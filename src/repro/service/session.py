"""Resident standing queries: register, advance, checkpoint, resume.

The session manager is the heart of service mode.  Where ``run()``
replays a recorded stream and exits, a :class:`SessionManager` keeps
each admitted query's dataflow *resident* and pushes every source event
through all of them as it arrives (:meth:`SessionManager.ingest`) —
the same incremental ``process`` API the executor has always had, now
driven forever.

Equivalence is the load-bearing guarantee: a standing query's changelog
is **byte-identical** (values, ``ptime``, ``undo``/``ver`` metadata,
ordering) to a one-shot ``run()`` over the same event sequence, because
ingest feeds every event to every flow in exactly the merged order the
batch replayer uses — including events of sources a query never scans,
which are no-ops but advance the flow's clock the same way.  Queries
whose effective config asks for parallelism run on the sharded runtime
when the partition analyzer admits them, with the same guarantee.

Durability reuses the PR 4 checkpoint machinery: every
``retry.checkpoint_interval`` ingested events (and on demand) each
flow's :meth:`~repro.exec.executor.Dataflow.checkpoint` bytes land in
``checkpoint_dir`` together with a manifest and the sources' recorded
prefixes, and :meth:`SessionManager.restore` brings a fresh manager
back to the cut — resident plans, cursors, and subscription sequence
numbers intact — so tailers can resume at the recorded offsets.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Optional

from ..config import ExecutionConfig
from ..core.errors import ExecutionError
from ..core.tvr import StreamEvent
from ..exec.executor import Dataflow, merge_source_events
from ..io import format_script, parse_script
from ..plan.optimizer import optimize
from ..plan.partition import analyze_partitioning
from ..plan.planner import QueryPlan
from ..runtime.sharded import ShardedDataflow
from .subscriptions import Delta, SubscriptionRegistry

if TYPE_CHECKING:
    from ..engine import StreamEngine

__all__ = ["StandingQuery", "SessionManager"]

_MANIFEST = "manifest.json"


class StandingQuery:
    """One resident query: its plan, its dataflow, its subscribers."""

    def __init__(
        self,
        query_id: str,
        tenant: str,
        sql: str,
        plan: QueryPlan,
        flow,
        subscriber_capacity: int,
        parallelism: int,
    ):
        self.query_id = query_id
        self.tenant = tenant
        self.sql = sql
        self.plan = plan
        self.flow = flow
        self.parallelism = parallelism
        self.subscriptions = SubscriptionRegistry(subscriber_capacity)
        #: output cursor: merged changes already published to subscribers.
        self.cursor = flow.output_size

    @property
    def sharded(self) -> bool:
        return isinstance(self.flow, ShardedDataflow)

    def state_rows(self) -> int:
        return self.flow.total_state_rows()

    def publish_pending(self) -> list[Delta]:
        """Publish changes the flow produced past the cursor."""
        produced = self.flow.output_slice(self.cursor)
        self.cursor = self.flow.output_size
        if not produced:
            return []
        return self.subscriptions.publish(produced)

    def describe(self) -> dict:
        return {
            "query_id": self.query_id,
            "tenant": self.tenant,
            "sql": self.sql,
            "runtime": (
                f"sharded({self.flow.shard_count})" if self.sharded else "serial"
            ),
            "deltas": self.subscriptions.next_seq,
            "subscribers": self.subscriptions.live_count,
            "state_rows": self.state_rows(),
            "watermark": self.flow.root_watermark,
        }


class SessionManager:
    """All resident queries of one service, advanced in lock-step.

    ``config`` is the service-level :class:`~repro.config.ExecutionConfig`
    (already resolved); per-query configs merge over it exactly as
    query-level configs merge over an engine's.
    """

    def __init__(self, engine: "StreamEngine", config: Optional[ExecutionConfig] = None):
        self.engine = engine
        self.config = (
            config if config is not None else engine.config
        ).resolved()
        self._queries: dict[str, StandingQuery] = {}
        #: source events ingested since construction (or restore).
        self.events_ingested = 0
        #: per-source consumed-event counts, for tailer resumption.
        self.source_offsets: dict[str, int] = {}
        self.checkpoints_taken = 0
        self._next_id = 1

    # -- registry ---------------------------------------------------------------

    def queries(self) -> list[StandingQuery]:
        return list(self._queries.values())

    def get(self, query_id: str) -> Optional[StandingQuery]:
        return self._queries.get(query_id)

    def tenant_usage(self, tenant: str) -> tuple[int, int]:
        """(active standing queries, resident state rows) for a tenant."""
        mine = [q for q in self._queries.values() if q.tenant == tenant]
        return len(mine), sum(q.state_rows() for q in mine)

    def register(
        self,
        tenant: str,
        sql: str,
        plan: QueryPlan,
        query_id: Optional[str] = None,
        config: Optional[ExecutionConfig] = None,
        catch_up: bool = True,
    ) -> StandingQuery:
        """Make an admitted plan resident and catch it up with history.

        The new flow replays every event the sources have recorded so
        far (so its state matches a from-the-start run), then joins the
        live ingest path.  Subscribers attach afterwards and see only
        future deltas — standard standing-query semantics.
        """
        if query_id is None:
            query_id = f"q{self._next_id}"
            while query_id in self._queries:
                self._next_id += 1
                query_id = f"q{self._next_id}"
        elif query_id in self._queries:
            raise ExecutionError(f"standing query {query_id!r} already exists")
        effective = (
            config.merged_over(self.config) if config is not None else self.config
        ).resolved()
        optimized = QueryPlan(
            root=optimize(plan).root, emit=plan.emit, sql=plan.sql
        )
        flow = self._build_flow(optimized, effective)
        query = StandingQuery(
            query_id,
            tenant,
            sql,
            optimized,
            flow,
            subscriber_capacity=effective.subscriber_capacity,
            parallelism=self._flow_parallelism(flow),
        )
        if catch_up:
            for event, source in merge_source_events(self.engine._sources):
                flow.process(event, source)
            query.cursor = flow.output_size
            # History deltas are never delivered; delta seq numbers line
            # up with changelog positions, so seek past the prefix.
            query.subscriptions.seek(query.cursor)
        self._queries[query_id] = query
        self._next_id += 1
        return query

    def unregister(self, query_id: str) -> bool:
        return self._queries.pop(query_id, None) is not None

    def _build_flow(self, plan: QueryPlan, effective: ExecutionConfig):
        if effective.parallelism > 1:
            decision = analyze_partitioning(plan)
            if decision.partitionable:
                return ShardedDataflow(
                    plan,
                    self.engine._sources,
                    decision.spec,
                    effective.parallelism,
                    effective.allowed_lateness,
                    backend="sync",  # incremental service feeding is in-process
                    retry=effective.retry,
                    batch_size=effective.batch_size,
                    coalesce_updates=effective.coalesce_updates,
                )
        return Dataflow(
            plan,
            self.engine._sources,
            effective.allowed_lateness,
            batch_size=effective.batch_size,
            coalesce_updates=effective.coalesce_updates,
        )

    @staticmethod
    def _flow_parallelism(flow) -> int:
        return flow.shard_count if isinstance(flow, ShardedDataflow) else 1

    # -- the live ingest path ----------------------------------------------------

    def ingest(self, event: StreamEvent, source: str) -> dict[str, list[Delta]]:
        """Advance the world by one source event.

        Appends the event to the source's recorded TVR (so late-joining
        queries can catch up and the replay oracle stays checkable),
        pushes it through every resident flow, and publishes each
        query's new changelog deltas to its subscribers.  Returns
        ``{query_id: [deltas]}`` for queries that produced output.
        """
        key = source.lower()
        if key not in self.engine._sources:
            raise ExecutionError(f"no source registered for {source!r}")
        self.engine._sources[key].apply(event)
        self.source_offsets[key] = self.source_offsets.get(key, 0) + 1
        self.events_ingested += 1
        published: dict[str, list[Delta]] = {}
        for query in self._queries.values():
            query.flow.process(event, source)
            deltas = query.publish_pending()
            if deltas:
                published[query.query_id] = deltas
        interval = self.config.retry.checkpoint_interval
        if (
            interval
            and self.config.checkpoint_dir
            and self.events_ingested % interval == 0
        ):
            self.checkpoint(self.config.checkpoint_dir)
        return published

    def queue_depth(self) -> int:
        """Undrained subscriber deltas across all queries."""
        return sum(q.subscriptions.queue_depth() for q in self._queries.values())

    # -- durability --------------------------------------------------------------

    def checkpoint(self, directory: Optional[str] = None) -> str:
        """Write a consistent cut of the whole session to ``directory``.

        Layout: ``manifest.json`` (queries, cursors, per-source
        offsets), one ``<query_id>.ckpt`` blob per resident flow (the
        PR 4 checkpoint bytes), and ``sources/<name>.script`` with each
        source's recorded prefix.  Atomic enough for a single-writer
        service: the manifest is written last.
        """
        directory = directory or self.config.checkpoint_dir
        if not directory:
            raise ExecutionError("no checkpoint directory configured")
        os.makedirs(os.path.join(directory, "sources"), exist_ok=True)
        for query in self._queries.values():
            blob = query.flow.checkpoint()
            with open(os.path.join(directory, f"{query.query_id}.ckpt"), "wb") as fh:
                fh.write(blob)
        for name, tvr in self.engine._sources.items():
            with open(
                os.path.join(directory, "sources", f"{name}.script"), "w"
            ) as fh:
                fh.write(format_script(tvr))
        manifest = {
            "events_ingested": self.events_ingested,
            "source_offsets": dict(self.source_offsets),
            "queries": [
                {
                    "query_id": q.query_id,
                    "tenant": q.tenant,
                    "sql": q.sql,
                    "parallelism": q.parallelism,
                    "cursor": q.cursor,
                    "next_seq": q.subscriptions.next_seq,
                }
                for q in self._queries.values()
            ],
        }
        with open(os.path.join(directory, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=2)
        self.checkpoints_taken += 1
        return directory

    def restore(self, directory: str, admit) -> int:
        """Resume from a checkpoint directory; returns queries restored.

        ``admit`` is a callable ``(tenant, sql) -> QueryPlan`` — the
        service passes its admission gateway, so a policy change between
        runs is enforced at restore time too.  Sources are re-registered
        from their recorded prefixes, each flow is rebuilt from its plan
        and restored from its blob, and ``source_offsets`` tells tailers
        where to resume reading.
        """
        with open(os.path.join(directory, _MANIFEST)) as fh:
            manifest = json.load(fh)
        sources_dir = os.path.join(directory, "sources")
        for entry in sorted(os.listdir(sources_dir)):
            name = entry[: -len(".script")]
            with open(os.path.join(sources_dir, entry)) as fh:
                tvr = parse_script(fh.read())
            if tvr.is_bounded:
                self.engine.register_table(name, tvr)
            else:
                self.engine.register_stream(name, tvr)
        self.events_ingested = manifest["events_ingested"]
        self.source_offsets = dict(manifest["source_offsets"])
        for spec in manifest["queries"]:
            plan = admit(spec["tenant"], spec["sql"])
            effective = ExecutionConfig(
                parallelism=spec["parallelism"]
            ).merged_over(self.config).resolved()
            query = self.register(
                spec["tenant"],
                spec["sql"],
                plan,
                query_id=spec["query_id"],
                config=effective,
                catch_up=False,
            )
            with open(os.path.join(directory, f"{spec['query_id']}.ckpt"), "rb") as fh:
                query.flow.restore(fh.read())
            query.cursor = spec["cursor"]
            query.subscriptions.seek(spec["next_seq"])
        return len(manifest["queries"])
