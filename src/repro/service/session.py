"""Resident standing queries: register, advance, checkpoint, resume.

The session manager is the heart of service mode.  Where ``run()``
replays a recorded stream and exits, a :class:`SessionManager` keeps
each admitted query's dataflow *resident* and pushes every source event
through all of them as it arrives (:meth:`SessionManager.ingest`) —
the same incremental ``process`` API the executor has always had, now
driven forever.

Equivalence is the load-bearing guarantee: a standing query's changelog
is **byte-identical** (values, ``ptime``, ``undo``/``ver`` metadata,
ordering) to a one-shot ``run()`` over the same event sequence, because
ingest feeds every event to every flow in exactly the merged order the
batch replayer uses — including events of sources a query never scans,
which are no-ops but advance the flow's clock the same way.  Queries
whose effective config asks for parallelism run on the sharded runtime
when the partition analyzer admits them, with the same guarantee.

**Multi-query optimization** (``share_plans``, on by default): the
:class:`SharedPlanCache` keeps one :class:`~repro.exec.executor.Dataflow`
per group of standing queries whose plans overlap.  Admission grafts a
new query onto the resident flow whose canonical subplan fingerprints
(:func:`~repro.plan.fingerprint.node_fingerprints`) cover the most of
its plan, so the shared prefix executes **once** per ingested event and
its changelog is multicast to every consuming query; only the private
suffix runs per query.  A freshly caught-up *donor* dataflow supplies
the private suffix's state so late joiners land at the host's position.
Subscriber deltas are byte-identical with sharing on or off — the
equivalence suite in ``tests/test_mqo.py`` enforces it, serial and
sharded, across checkpoint/restore.  See ``docs/MQO.md``.

Durability reuses the PR 4 checkpoint machinery: every
``retry.checkpoint_interval`` ingested events (and on demand) each
flow's :meth:`~repro.exec.executor.Dataflow.checkpoint` bytes land in
``checkpoint_dir`` together with a manifest and the sources' recorded
prefixes, and :meth:`SessionManager.restore` brings a fresh manager
back to the cut — resident plans, cursors, and subscription sequence
numbers intact — so tailers can resume at the recorded offsets.
Shared operator state is snapshotted once per flow, and the manifest
records each flow's member queries plus its sharing map so restore can
rebuild the exact physical DAG.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from typing import TYPE_CHECKING, Optional

from ..config import ExecutionConfig
from ..core.errors import ExecutionError
from ..core.tvr import StreamEvent
from ..exec.executor import Dataflow, merge_source_events
from ..io import format_script, parse_script
from ..obs.histogram import Histogram
from ..obs.lineage import LineageRecorder
from ..plan import plan_fingerprint
from ..plan.optimizer import optimize
from ..plan.partition import analyze_partitioning
from ..plan.planner import QueryPlan
from ..runtime.sharded import ShardedDataflow
from .metrics import SlowQueryLog
from .subscriptions import Delta, SubscriptionRegistry

if TYPE_CHECKING:
    from ..engine import StreamEngine

__all__ = ["StandingQuery", "SharedPlanCache", "SessionManager"]

_MANIFEST = "manifest.json"


class StandingQuery:
    """One resident query: its plan, its output channel, its subscribers.

    With plan sharing, several standing queries may read through the
    same physical dataflow; each owns a distinct output channel named
    by its ``query_id``, so cursors, subscriptions, and state
    attribution stay per-query.
    """

    def __init__(
        self,
        query_id: str,
        tenant: str,
        sql: str,
        plan: QueryPlan,
        flow,
        subscriber_capacity: int,
        parallelism: int,
        output_id: Optional[str] = None,
    ):
        self.query_id = query_id
        self.tenant = tenant
        self.sql = sql
        self.plan = plan
        self.flow = flow
        self.parallelism = parallelism
        #: which of the flow's output channels is this query's changelog
        self.output_id = output_id if output_id is not None else query_id
        #: query ids sharing this flow (live view of the flow record)
        self.shared_group: list[str] = [query_id]
        self.subscriptions = SubscriptionRegistry(subscriber_capacity)
        #: output cursor: merged changes already published to subscribers.
        self.cursor = flow.output_size_of(self.output_id)
        #: microseconds from event ingest to this query's delta push.
        self.ingest_push = Histogram()

    @property
    def sharded(self) -> bool:
        return isinstance(self.flow, ShardedDataflow)

    def state_rows(self) -> int:
        return self.flow.state_rows_of(self.output_id)

    def publish_pending(self) -> list[Delta]:
        """Publish changes the flow produced past the cursor."""
        produced = self.flow.output_slice_of(self.output_id, self.cursor)
        self.cursor = self.flow.output_size_of(self.output_id)
        if not produced:
            return []
        return self.subscriptions.publish(produced)

    def describe(self) -> dict:
        return {
            "query_id": self.query_id,
            "tenant": self.tenant,
            "sql": self.sql,
            "runtime": (
                f"sharded({self.flow.shard_count})" if self.sharded else "serial"
            ),
            "deltas": self.subscriptions.next_seq,
            "subscribers": self.subscriptions.live_count,
            "state_rows": self.state_rows(),
            "watermark": self.flow.root_watermark_of(self.output_id),
            "shared_with": sorted(
                qid for qid in self.shared_group if qid != self.query_id
            ),
        }


class _FlowRecord:
    """One physical dataflow and the standing queries reading it."""

    __slots__ = ("flow", "key", "members")

    def __init__(self, flow, key: tuple):
        self.flow = flow
        self.key = key
        #: query ids in attachment order; members[0] names the
        #: checkpoint blob.
        self.members: list[str] = []


class SharedPlanCache:
    """The residency index for multi-query optimization.

    Holds one :class:`_FlowRecord` per physical dataflow.  A new query
    is grafted onto the record whose flow's resident fingerprints cover
    the most of its plan (:meth:`~repro.exec.executor.Dataflow.plan_overlap`),
    but only when the execution shapes agree: the *config key* — runtime
    kind, partition spec and shard count for sharded flows, allowed
    lateness, batch size, compaction — must match exactly, because two
    queries can only share an operator whose behaviour those knobs do
    not alter.  Lateness is deliberately **not** part of the plan
    fingerprint; it gates sharing here instead.
    """

    def __init__(self):
        self.records: list[_FlowRecord] = []

    @staticmethod
    def config_key(plan: QueryPlan, effective: ExecutionConfig) -> tuple:
        """The execution shape a flow must match to host ``plan``."""
        if effective.parallelism > 1:
            decision = analyze_partitioning(plan)
            if decision.partitionable:
                return (
                    "sharded",
                    decision.spec,
                    effective.parallelism,
                    effective.allowed_lateness,
                    effective.batch_size,
                    effective.coalesce_updates,
                    # Flow-level, not per-plan: whether an individual
                    # output splits is decided at attach time, so an
                    # ineligible query can still share a two-phase flow.
                    effective.two_phase,
                    effective.columnar,
                )
        return (
            "serial",
            effective.allowed_lateness,
            effective.batch_size,
            effective.coalesce_updates,
            effective.columnar,
        )

    def find_host(
        self, plan: QueryPlan, key: tuple
    ) -> Optional[_FlowRecord]:
        """Best resident flow for ``plan``, or ``None`` to build fresh.

        Ties break toward the earliest-registered flow, so repeated
        identical queries pile onto one dataflow instead of pairing up.
        """
        best: Optional[_FlowRecord] = None
        best_overlap = 0
        for record in self.records:
            if record.key != key:
                continue
            overlap = record.flow.plan_overlap(plan)
            if overlap > best_overlap:
                best, best_overlap = record, overlap
        return best

    def record_for(self, query_id: str) -> Optional[_FlowRecord]:
        for record in self.records:
            if query_id in record.members:
                return record
        return None

    def add(self, record: _FlowRecord) -> None:
        self.records.append(record)

    def drop_member(self, query_id: str) -> None:
        record = self.record_for(query_id)
        if record is None:
            return
        record.flow.remove_output(query_id)
        record.members.remove(query_id)
        if not record.members:
            self.records.remove(record)

    # -- observability -----------------------------------------------------------

    def shared_subplans(self) -> int:
        """Resident operators multicast to two or more queries."""
        return sum(r.flow.shared_operator_count() for r in self.records)

    def sharing_ratio(self) -> float:
        """Logical operators attached ÷ physical operators resident.

        1.0 means no sharing (or no queries); 2.0 means the average
        resident operator serves two queries.
        """
        attached = sum(r.flow.attached_operator_count() for r in self.records)
        resident = sum(r.flow.resident_operator_count() for r in self.records)
        return attached / resident if resident else 1.0


class SessionManager:
    """All resident queries of one service, advanced in lock-step.

    ``config`` is the service-level :class:`~repro.config.ExecutionConfig`
    (already resolved); per-query configs merge over it exactly as
    query-level configs merge over an engine's.
    """

    def __init__(self, engine: "StreamEngine", config: Optional[ExecutionConfig] = None):
        self.engine = engine
        self.config = (
            config if config is not None else engine.config
        ).resolved()
        self._queries: dict[str, StandingQuery] = {}
        self.plan_cache = SharedPlanCache()
        #: source events ingested since construction (or restore).
        self.events_ingested = 0
        #: per-source consumed-event counts, for tailer resumption.
        self.source_offsets: dict[str, int] = {}
        self.checkpoints_taken = 0
        #: threshold-crossing incidents (see metrics.SlowQueryLog).
        self.slow_log = SlowQueryLog()
        self._next_id = 1

    # -- registry ---------------------------------------------------------------

    def queries(self) -> list[StandingQuery]:
        return list(self._queries.values())

    def get(self, query_id: str) -> Optional[StandingQuery]:
        return self._queries.get(query_id)

    def tenant_usage(self, tenant: str) -> tuple[int, int]:
        """(active standing queries, resident state rows) for a tenant."""
        mine = [q for q in self._queries.values() if q.tenant == tenant]
        return len(mine), sum(q.state_rows() for q in mine)

    def shared_subplans(self) -> int:
        return self.plan_cache.shared_subplans()

    def sharing_ratio(self) -> float:
        return self.plan_cache.sharing_ratio()

    def register(
        self,
        tenant: str,
        sql: str,
        plan: QueryPlan,
        query_id: Optional[str] = None,
        config: Optional[ExecutionConfig] = None,
        catch_up: bool = True,
    ) -> StandingQuery:
        """Make an admitted plan resident and catch it up with history.

        The new flow replays every event the sources have recorded so
        far (so its state matches a from-the-start run), then joins the
        live ingest path.  Subscribers attach afterwards and see only
        future deltas — standard standing-query semantics.

        When the effective config's ``share_plans`` is on and a resident
        flow's fingerprints overlap the new plan, the query is grafted
        onto that flow instead of building a private one: a throwaway
        *donor* dataflow is caught up with history, and
        :meth:`~repro.exec.executor.Dataflow.attach_output` transplants
        its private-suffix operators (state, timers, output history)
        while reusing the resident shared prefix.
        """
        if query_id is None:
            query_id = f"q{self._next_id}"
            while query_id in self._queries:
                self._next_id += 1
                query_id = f"q{self._next_id}"
        elif query_id in self._queries:
            raise ExecutionError(f"standing query {query_id!r} already exists")
        effective = (
            config.merged_over(self.config) if config is not None else self.config
        ).resolved()
        optimized = QueryPlan(
            root=optimize(plan).root, emit=plan.emit, sql=plan.sql
        )
        key = SharedPlanCache.config_key(optimized, effective)
        host: Optional[_FlowRecord] = None
        # Sharing needs catch-up: grafting transplants a caught-up donor,
        # and a cold attach onto a warm flow would break equivalence.
        if effective.share_plans and catch_up:
            host = self.plan_cache.find_host(optimized, key)
        if host is not None:
            # The donor is a throwaway state supplier: its operators are
            # transplanted into the host flow, whose recorder (if any)
            # covers them from then on, so tracing the donor's replay
            # would only burn time on lineage that is discarded.
            donor = self._build_flow(
                optimized, effective, output_id=query_id, lineage=False
            )
            for event, source in merge_source_events(self.engine._sources):
                donor.process(event, source)
            # Root-level sharing is only sound when some member's whole
            # plan (root fingerprint + EMIT clause) coincides; otherwise
            # equal changelogs could hide differing materialization.
            fingerprint = plan_fingerprint(optimized)
            allow_root_share = any(
                plan_fingerprint(self._queries[member].plan) == fingerprint
                for member in host.members
            )
            host.flow.attach_output(
                query_id,
                optimized,
                donor=donor,
                allow_root_share=allow_root_share,
            )
            flow, record = host.flow, host
        else:
            flow = self._build_flow(optimized, effective, output_id=query_id)
            record = _FlowRecord(flow, key)
            if catch_up:
                for event, source in merge_source_events(self.engine._sources):
                    flow.process(event, source)
            self.plan_cache.add(record)
        record.members.append(query_id)
        query = StandingQuery(
            query_id,
            tenant,
            sql,
            optimized,
            flow,
            subscriber_capacity=effective.subscriber_capacity,
            parallelism=self._flow_parallelism(flow),
            output_id=query_id,
        )
        query.shared_group = record.members
        if catch_up:
            query.cursor = flow.output_size_of(query_id)
            # History deltas are never delivered; delta seq numbers line
            # up with changelog positions, so seek past the prefix.
            query.subscriptions.seek(query.cursor)
        self._queries[query_id] = query
        self._next_id += 1
        return query

    def unregister(self, query_id: str) -> bool:
        query = self._queries.pop(query_id, None)
        if query is None:
            return False
        # Ref-counted teardown: only operators no surviving member
        # reads are closed and dropped; shared state is untouched.
        self.plan_cache.drop_member(query_id)
        self.slow_log.forget(query_id)
        return True

    def _build_flow(
        self,
        plan: QueryPlan,
        effective: ExecutionConfig,
        output_id: str,
        lineage: bool = True,
    ):
        if effective.parallelism > 1:
            decision = analyze_partitioning(plan)
            if decision.partitionable:
                flow = ShardedDataflow(
                    plan,
                    self.engine._sources,
                    decision.spec,
                    effective.parallelism,
                    effective.allowed_lateness,
                    backend="sync",  # incremental service feeding is in-process
                    retry=effective.retry,
                    batch_size=effective.batch_size,
                    coalesce_updates=effective.coalesce_updates,
                    two_phase=effective.two_phase != "off",
                    output_id=output_id,
                    columnar=effective.columnar,
                )
                self._install_lineage(flow, effective, lineage)
                return flow
        flow = Dataflow(
            plan,
            self.engine._sources,
            effective.allowed_lateness,
            batch_size=effective.batch_size,
            coalesce_updates=effective.coalesce_updates,
            output_id=output_id,
            columnar=effective.columnar,
        )
        self._install_lineage(flow, effective, lineage)
        return flow

    @staticmethod
    def _install_lineage(flow, effective: ExecutionConfig, lineage: bool) -> None:
        """Give a fresh flow its own provenance recorder when enabled.

        One recorder per physical flow: every resident flow sees every
        ingested event in the same order, so per-source sequence numbers
        (and hence the deterministic sampling decisions) agree across
        flows without any shared state.  Installed before catch-up, so a
        late-joining query's replayed history is numbered exactly as a
        from-the-start run would have numbered it.
        """
        if lineage and effective.lineage_sample > 0:
            flow.set_lineage(
                LineageRecorder(
                    effective.lineage_sample,
                    max_traces=effective.lineage_max_traces,
                )
            )

    @staticmethod
    def _flow_parallelism(flow) -> int:
        return flow.shard_count if isinstance(flow, ShardedDataflow) else 1

    # -- the live ingest path ----------------------------------------------------

    def ingest(self, event: StreamEvent, source: str) -> dict[str, list[Delta]]:
        """Advance the world by one source event.

        Appends the event to the source's recorded TVR (so late-joining
        queries can catch up and the replay oracle stays checkable),
        pushes it through every resident flow **once** — a flow shared
        by k queries runs its shared prefix a single time — and
        publishes each query's new changelog deltas to its subscribers.
        Returns ``{query_id: [deltas]}`` for queries that produced
        output.
        """
        started = time.perf_counter()
        key = source.lower()
        if key not in self.engine._sources:
            raise ExecutionError(f"no source registered for {source!r}")
        self.engine._sources[key].apply(event)
        self.source_offsets[key] = self.source_offsets.get(key, 0) + 1
        self.events_ingested += 1
        for record in self.plan_cache.records:
            record.flow.process(event, source)
        published: dict[str, list[Delta]] = {}
        for query in self._queries.values():
            deltas = query.publish_pending()
            if deltas:
                published[query.query_id] = deltas
                query.ingest_push.observe(
                    int((time.perf_counter() - started) * 1_000_000)
                )
        self._check_slow_queries()
        interval = self.config.retry.checkpoint_interval
        if (
            interval
            and self.config.checkpoint_dir
            and self.events_ingested % interval == 0
        ):
            self.checkpoint(self.config.checkpoint_dir)
        return published

    def queue_depth(self) -> int:
        """Undrained subscriber deltas across all queries."""
        return sum(q.subscriptions.queue_depth() for q in self._queries.values())

    def _check_slow_queries(self) -> None:
        """Fold every query's health into the slow-query log.

        Thresholds are the session-level config's ``slow_query_p99_ms``
        and ``slow_query_depth``; 0 disables a check.  The log itself
        deduplicates per episode, so calling this every ingest is cheap
        and produces incident entries, not per-event spam.
        """
        p99_limit = self.config.slow_query_p99_ms
        depth_limit = self.config.slow_query_depth
        if not p99_limit and not depth_limit:
            return
        for query in self._queries.values():
            if p99_limit:
                emit = query.flow.telemetry_of(query.output_id).emit_latency
                p99 = emit.percentile(0.99)
                if p99 is not None:
                    self.slow_log.update(
                        query.query_id,
                        query.tenant,
                        "emit_p99_ms",
                        p99,
                        p99_limit,
                        self.events_ingested,
                    )
            if depth_limit:
                self.slow_log.update(
                    query.query_id,
                    query.tenant,
                    "queue_depth",
                    query.subscriptions.queue_depth(),
                    depth_limit,
                    self.events_ingested,
                )

    # -- lineage -------------------------------------------------------------------

    def explain_delta(self, query_id: str, seq: int) -> Optional[dict]:
        """The provenance of delta ``seq`` of a standing query.

        Delta sequence numbers line up with changelog positions (the
        subscription registry seeks past the history prefix), so the
        flow's lineage recorder resolves them directly.  Returns
        ``None`` when lineage is disabled for the query's flow or the
        position was not sampled; raises for an unknown query.
        """
        query = self._queries.get(query_id)
        if query is None:
            raise ExecutionError(f"no standing query {query_id!r}")
        recorder = getattr(query.flow, "lineage", None)
        if recorder is None:
            return None
        return recorder.explain(query.output_id, seq)

    def lineage_summary(self) -> Optional[dict]:
        """Tracing volume aggregated over all resident flows' recorders.

        ``None`` when no flow has lineage enabled.  ``events_seen`` and
        ``sampled`` count per flow (every flow sees every event), so the
        totals measure recording work done, not distinct source events.
        """
        summaries = [
            record.flow.lineage.summary()
            for record in self.plan_cache.records
            if getattr(record.flow, "lineage", None) is not None
        ]
        if not summaries:
            return None
        return {
            "flows": len(summaries),
            "events_seen": sum(s["events_seen"] for s in summaries),
            "sampled": sum(s["sampled"] for s in summaries),
            "retained": sum(s["retained"] for s in summaries),
            "dropped": sum(s["dropped"] for s in summaries),
        }

    # -- durability --------------------------------------------------------------

    def checkpoint(self, directory: Optional[str] = None) -> str:
        """Write a consistent cut of the whole session to ``directory``.

        Layout: ``manifest.json`` (queries, cursors, per-source
        offsets, and the flow→members sharing map), one
        ``<first_member>.ckpt`` blob per resident *flow* — shared
        operator state is snapshotted exactly once, however many
        queries read it — and ``sources/<name>.script`` with each
        source's recorded prefix.  Atomic enough for a single-writer
        service: the manifest is written last.
        """
        directory = directory or self.config.checkpoint_dir
        if not directory:
            raise ExecutionError("no checkpoint directory configured")
        os.makedirs(os.path.join(directory, "sources"), exist_ok=True)
        flows = []
        for record in self.plan_cache.records:
            blob = record.flow.checkpoint()
            blob_id = record.members[0]
            with open(os.path.join(directory, f"{blob_id}.ckpt"), "wb") as fh:
                fh.write(blob)
            flows.append(
                {
                    "id": blob_id,
                    "members": list(record.members),
                    "parallelism": self._flow_parallelism(record.flow),
                    "sharing": record.flow.sharing_map(),
                }
            )
        for name, tvr in self.engine._sources.items():
            with open(
                os.path.join(directory, "sources", f"{name}.script"), "w"
            ) as fh:
                fh.write(format_script(tvr))
        manifest = {
            "events_ingested": self.events_ingested,
            "source_offsets": dict(self.source_offsets),
            "flows": flows,
            "queries": [
                {
                    "query_id": q.query_id,
                    "tenant": q.tenant,
                    "sql": q.sql,
                    "parallelism": q.parallelism,
                    "cursor": q.cursor,
                    "next_seq": q.subscriptions.next_seq,
                }
                for q in self._queries.values()
            ],
        }
        with open(os.path.join(directory, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=2)
        self.checkpoints_taken += 1
        return directory

    def restore(self, directory: str, admit) -> int:
        """Resume from a checkpoint directory; returns queries restored.

        ``admit`` is a callable ``(tenant, sql) -> QueryPlan`` — the
        service passes its admission gateway, so a policy change between
        runs is enforced at restore time too.  Sources are re-registered
        from their recorded prefixes, each flow is rebuilt **with the
        checkpoint's exact sharing structure** (via ``from_structure``:
        re-running fingerprint matching could legally regroup after
        withdrawals, and operator states would misalign) and restored
        from its blob, and ``source_offsets`` tells tailers where to
        resume reading.  Manifests from before plan sharing (no
        ``flows`` key) restore one private flow per query.
        """
        with open(os.path.join(directory, _MANIFEST)) as fh:
            manifest = json.load(fh)
        sources_dir = os.path.join(directory, "sources")
        for entry in sorted(os.listdir(sources_dir)):
            name = entry[: -len(".script")]
            with open(os.path.join(sources_dir, entry)) as fh:
                tvr = parse_script(fh.read())
            if tvr.is_bounded:
                self.engine.register_table(name, tvr)
            else:
                self.engine.register_stream(name, tvr)
        self.events_ingested = manifest["events_ingested"]
        self.source_offsets = dict(manifest["source_offsets"])
        if "flows" not in manifest:
            return self._restore_legacy(directory, manifest, admit)
        by_id = {spec["query_id"]: spec for spec in manifest["queries"]}
        for entry in manifest["flows"]:
            self._restore_flow(directory, entry, by_id, admit)
        return len(manifest["queries"])

    def _restore_flow(
        self, directory: str, entry: dict, by_id: dict, admit
    ) -> None:
        """Rebuild one (possibly shared) flow and its member queries."""
        effective = ExecutionConfig(
            parallelism=entry["parallelism"]
        ).merged_over(self.config).resolved()
        plans = []
        for member in entry["members"]:
            spec = by_id[member]
            admitted = admit(spec["tenant"], spec["sql"])
            plans.append(
                (
                    member,
                    QueryPlan(
                        root=optimize(admitted).root,
                        emit=admitted.emit,
                        sql=admitted.sql,
                    ),
                )
            )
        with open(os.path.join(directory, f"{entry['id']}.ckpt"), "rb") as fh:
            blob = fh.read()
        payload = pickle.loads(blob)
        if "shard_count" in payload:
            structure = pickle.loads(payload["shards"][0])
            decision = analyze_partitioning(plans[0][1])
            flow = ShardedDataflow.from_structure(
                plans,
                structure,
                self.engine._sources,
                decision.spec,
                payload["shard_count"],
                effective.allowed_lateness,
                backend="sync",
                retry=effective.retry,
                batch_size=effective.batch_size,
                coalesce_updates=effective.coalesce_updates,
                two_phase=effective.two_phase != "off",
                columnar=effective.columnar,
            )
        else:
            flow = Dataflow.from_structure(
                plans,
                payload,
                self.engine._sources,
                effective.allowed_lateness,
                batch_size=effective.batch_size,
                coalesce_updates=effective.coalesce_updates,
                columnar=effective.columnar,
            )
        flow.restore(blob)
        record = _FlowRecord(
            flow, SharedPlanCache.config_key(plans[0][1], effective)
        )
        self.plan_cache.add(record)
        for member, plan in plans:
            spec = by_id[member]
            record.members.append(member)
            query = StandingQuery(
                member,
                spec["tenant"],
                spec["sql"],
                plan,
                flow,
                subscriber_capacity=effective.subscriber_capacity,
                parallelism=self._flow_parallelism(flow),
                output_id=member,
            )
            query.shared_group = record.members
            query.cursor = spec["cursor"]
            query.subscriptions.seek(spec["next_seq"])
            self._queries[member] = query

    def _restore_legacy(self, directory: str, manifest: dict, admit) -> int:
        """Restore a pre-sharing manifest: one private flow per query."""
        for spec in manifest["queries"]:
            plan = admit(spec["tenant"], spec["sql"])
            effective = ExecutionConfig(
                parallelism=spec["parallelism"]
            ).merged_over(self.config).resolved()
            query = self.register(
                spec["tenant"],
                spec["sql"],
                plan,
                query_id=spec["query_id"],
                config=effective,
                catch_up=False,
            )
            with open(os.path.join(directory, f"{spec['query_id']}.ckpt"), "rb") as fh:
                query.flow.restore(fh.read())
            query.cursor = spec["cursor"]
            query.subscriptions.seek(spec["next_seq"])
        return len(manifest["queries"])
