"""The standing-query service: admission, residency, fan-out, scrape.

Two layers, deliberately separated:

* :class:`StandingQueryService` — the synchronous core.  It composes a
  :class:`~repro.engine.StreamEngine` (the catalog and sources), an
  :class:`~repro.service.admission.AdmissionGateway` (the four-gate
  front door), a :class:`~repro.service.session.SessionManager` (the
  resident dataflows), and :class:`~repro.service.metrics.ServiceMetrics`
  (the ``repro_service_*`` ledger).  Everything the service can do —
  submit, subscribe, ingest, scrape, checkpoint, resume — is a plain
  method call here, which is what the tests, the shell, and the
  examples drive directly.
* :class:`ServiceServer` — the asyncio binding: a line-JSON TCP
  protocol over the core plus the live-source pump, used by
  ``python -m repro serve``.

Wire protocol (one JSON object per line, both directions)::

    → {"op": "submit", "tenant": "alice", "sql": "SELECT ..."}
    ← {"ok": true, "query": "q1", "schema": ["bidder", "total"]}
    → {"op": "subscribe", "query": "q1", "subscriber": "alice-1"}
    ← {"ok": true, "subscriber": "alice-1", "cursor": 0}
    ← {"delta": {"seq": 0, "ptime": ..., "kind": "insert", "values": [...]}}
    → {"op": "ingest", "source": "bid", "event": "{\\"ptime\\": ...}"}
    ← {"ok": true, "published": {"q1": 2}}

A rejection is ``{"ok": false, "error": {"code": ..., "tenant": ...,
"detail": ...}}`` — the :class:`~repro.service.admission.AdmissionError`
structure verbatim, so clients can switch on ``error.code``.

When any tenant policy carries a ``token``, the gateway runs in
authenticated mode: a connection must first prove its identity ::

    → {"op": "auth", "tenant": "alice", "token": "s3cret"}
    ← {"ok": true, "tenant": "alice"}

and every later ``submit`` is attributed to the *authenticated* tenant
— a mismatched ``tenant`` field is an ``auth_denied`` rejection, which
closes the spoofing hole of trusting the request's claim outright.
Without tokens the field is trusted as before (development mode).
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Optional

from ..config import ExecutionConfig
from ..core.errors import ExecutionError, ReproError
from ..core.schema import Schema
from ..core.tvr import StreamEvent, TimeVaryingRelation
from ..engine import StreamEngine
from ..io import parse_event_line
from .admission import AdmissionError, AdmissionGateway, TenantPolicy
from .http import MetricsHttpServer
from .metrics import ServiceMetrics, render_service_exposition
from .session import SessionManager, StandingQuery
from .sources import LiveSource, pump, serve_socket_lines, tail_file
from .subscriptions import Subscriber

__all__ = ["StandingQueryService", "ServiceServer", "run_service"]


class StandingQueryService:
    """One service instance: gateway + session + metrics over an engine."""

    def __init__(
        self,
        engine: Optional[StreamEngine] = None,
        config: Optional[ExecutionConfig] = None,
        policies: Optional[dict[str, TenantPolicy]] = None,
        default_policy: Optional[TenantPolicy] = TenantPolicy(name="*"),
    ):
        self.engine = engine if engine is not None else StreamEngine(config=config)
        self.session = SessionManager(self.engine, config=config)
        self.gateway = AdmissionGateway(
            self.engine._catalog,
            self.engine._registry,
            policies=dict(policies or {}),
            default_policy=default_policy,
        )
        self.metrics = ServiceMetrics()
        #: live-source queue depths, refreshed by the server's pump.
        self.source_depths: dict[str, int] = {}

    @property
    def config(self) -> ExecutionConfig:
        return self.session.config

    # -- sources ------------------------------------------------------------

    def register_stream(self, name: str, tvr: TimeVaryingRelation) -> None:
        self.engine.register_stream(name, tvr)

    def register_table(self, name: str, schema_or_tvr, rows=()) -> None:
        self.engine.register_table(name, schema_or_tvr, rows)

    def source_schema(self, name: str) -> Schema:
        return self.engine.source(name).schema

    # -- the front door -----------------------------------------------------

    def submit(
        self,
        tenant: str,
        sql: str,
        query_id: Optional[str] = None,
        config: Optional[ExecutionConfig] = None,
    ) -> StandingQuery:
        """Admit ``sql`` for ``tenant`` and make it resident.

        Raises :class:`~repro.service.admission.AdmissionError` (and
        bumps the matching reject counter) when any gate refuses; an
        admitted query is caught up with all recorded history and joins
        the live ingest path.
        """
        active, state_rows = self.session.tenant_usage(tenant)
        try:
            plan = self.gateway.admit(
                tenant, sql, active_queries=active, state_rows=state_rows
            )
        except AdmissionError as exc:
            self.metrics.record_reject(exc.code)
            raise
        query = self.session.register(
            tenant, sql, plan, query_id=query_id, config=config
        )
        self.metrics.record_admitted()
        return query

    def withdraw(self, query_id: str) -> bool:
        """Drop a standing query (and all its subscribers)."""
        return self.session.unregister(query_id)

    def subscribe(
        self,
        query_id: str,
        subscriber_id: str,
        capacity: Optional[int] = None,
    ) -> Subscriber:
        query = self.session.get(query_id)
        if query is None:
            raise ExecutionError(f"no standing query {query_id!r}")
        subscriber = query.subscriptions.subscribe(subscriber_id, capacity)
        self.metrics.record_subscribe()
        return subscriber

    def unsubscribe(self, query_id: str, subscriber_id: str) -> bool:
        query = self.session.get(query_id)
        if query is None:
            return False
        return query.subscriptions.unsubscribe(subscriber_id)

    # -- the data path ------------------------------------------------------

    def ingest(self, event: StreamEvent, source: str):
        """Advance every resident query by one source event."""
        return self.session.ingest(event, source)

    def ingest_line(self, source: str, line: str):
        """Parse one feed line (script or JSONL) and ingest it."""
        parsed = parse_event_line(line, self.source_schema(source), source)
        if isinstance(parsed, Schema):
            raise ExecutionError(
                "schema lines are not ingestable; the source is already "
                "registered"
            )
        return self.ingest(parsed, source)

    def list_queries(self) -> list[dict]:
        return [query.describe() for query in self.session.queries()]

    def scrape(self) -> str:
        """The ``repro_service_*`` Prometheus exposition, one string."""
        return render_service_exposition(
            self.metrics, self.session, self.source_depths
        )

    # -- observability --------------------------------------------------------

    def explain_delta(self, query_id: str, seq: int) -> Optional[dict]:
        """Trace one subscriber delta back to its source rows.

        ``None`` when the query's flow has lineage disabled
        (``lineage_sample=0``) or position ``seq`` was not in the
        sample; raises :class:`~repro.core.errors.ExecutionError` for an
        unknown query.  See docs/OBSERVABILITY.md for the result shape.
        """
        return self.session.explain_delta(query_id, seq)

    def slow_queries(self) -> list[dict]:
        """The retained slow-query log entries, oldest first."""
        return self.session.slow_log.entries()

    # -- durability ---------------------------------------------------------

    def checkpoint(self, directory: Optional[str] = None) -> str:
        return self.session.checkpoint(directory)

    def resume(self, directory: Optional[str] = None) -> int:
        """Restore from a checkpoint directory if one exists.

        Re-admission runs through this service's gateway, so restored
        queries obey the *current* policies.  Returns the number of
        queries restored (0 when there is nothing to resume).
        """
        directory = directory or self.config.checkpoint_dir
        if not directory or not os.path.exists(
            os.path.join(directory, "manifest.json")
        ):
            return 0

        def admit(tenant: str, sql: str):
            return self.gateway.admit(tenant, sql)

        return self.session.restore(directory, admit)


class ServiceServer:
    """Line-JSON TCP front end plus the live-source pump."""

    def __init__(
        self,
        service: StandingQueryService,
        host: str = "127.0.0.1",
        port: int = 7654,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: (query_id, subscriber_id, writer) triples with a live stream.
        self._streams: list[tuple[str, str, asyncio.StreamWriter]] = []
        self.sources: list[LiveSource] = []
        self._tail_tasks: list[asyncio.Task] = []
        #: (source, listening server) pairs from :meth:`listen_source`.
        self._socket_servers: list[
            tuple[LiveSource, asyncio.AbstractServer]
        ] = []
        self._pump_task: Optional[asyncio.Task] = None
        self._follow = True
        #: connection → authenticated tenant (token mode only).
        self._authed: dict[asyncio.StreamWriter, str] = {}
        #: optional HTTP scrape plane (GET /metrics, GET /healthz).
        self.http: Optional[MetricsHttpServer] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    async def serve_http(self, host: str, port: int) -> MetricsHttpServer:
        """Open the HTTP scrape plane next to the line-JSON port.

        The source-depth gauges are refreshed on every scrape, the same
        way the line-JSON ``metrics`` op refreshes them.
        """
        def scrape_with_depths() -> str:
            self._refresh_depths()
            return self.service.scrape()

        self.http = MetricsHttpServer(
            self.service, host, port, scrape=scrape_with_depths
        )
        await self.http.start()
        return self.http

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    def add_tail(
        self,
        name: str,
        path: str,
        *,
        poll_interval: float = 0.05,
    ) -> LiveSource:
        """Tail ``path`` into registered source ``name`` (resuming past
        any events a restored session already consumed)."""
        schema = self.service.source_schema(name)
        skip = self.service.session.source_offsets.get(name.lower(), 0)
        source = self._live_source(name)
        self._tail_tasks.append(
            asyncio.ensure_future(
                tail_file(
                    source,
                    path,
                    schema=schema,
                    skip=skip,
                    poll_interval=poll_interval,
                    follow=lambda: self._follow,
                )
            )
        )
        return source

    async def listen_source(self, name: str, host: str, port: int) -> LiveSource:
        """Accept line-oriented feed connections into source ``name``.

        The source must already be registered (its schema types the
        incoming lines); producers connect with plain TCP and write
        JSONL or script notation, one event per line, exactly as a
        tailed feed file would contain.
        """
        schema = self.service.source_schema(name)
        source = self._live_source(name)
        server = await serve_socket_lines(
            source, host, port, schema=schema
        )
        self._socket_servers.append((source, server))
        return source

    def _live_source(self, name: str) -> LiveSource:
        """One queue per source name: the pump merges by name, so a
        second feed for the same source (a tail plus a socket
        listener) must share the existing queue, not shadow it."""
        for source in self.sources:
            if source.name == name:
                source.add_producer()
                return source
        source = LiveSource(
            name, queue_capacity=self.service.config.queue_capacity
        )
        self.sources.append(source)
        return source

    def start_pump(self) -> asyncio.Task:
        """Start draining the live sources into the session."""

        async def flush_streams(name, event, result) -> None:
            self._refresh_depths()
            await self._flush_subscribers()

        self._pump_task = asyncio.ensure_future(
            pump(self.sources, self.service.ingest, on_ingest=flush_streams)
        )
        return self._pump_task

    async def drain(self) -> None:
        """Stop following tails and sockets, let the pump finish."""
        self._follow = False
        for task in self._tail_tasks:
            await task
        for source, server in self._socket_servers:
            server.close()
            await server.wait_closed()
            await source.end()
        self._socket_servers = []
        if self._pump_task is not None:
            await self._pump_task
        self._refresh_depths()
        await self._flush_subscribers()

    async def stop(self) -> None:
        for _, server in self._socket_servers:
            server.close()
            await server.wait_closed()
        self._socket_servers = []
        if self.http is not None:
            await self.http.stop()
            self.http = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def _refresh_depths(self) -> None:
        self.service.source_depths = {s.name: s.depth for s in self.sources}

    # -- protocol -----------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    data = await reader.readline()
                except (asyncio.CancelledError, ConnectionError):
                    break  # loop shutdown or client reset; just detach
                if not data:
                    break
                try:
                    request = json.loads(data.decode("utf-8"))
                except ValueError:
                    await self._send(writer, {"ok": False, "error": {
                        "code": "parse_error", "tenant": "",
                        "detail": "request is not valid JSON"}})
                    continue
                response = await self._dispatch(request, writer)
                await self._send(writer, response)
                await self._flush_subscribers()
        finally:
            self._streams = [
                (q, s, w) for (q, s, w) in self._streams if w is not writer
            ]
            self._authed.pop(writer, None)
            writer.close()

    def _effective_tenant(self, request: dict, writer) -> str:
        """Who this request acts as, spoof-proofed in token mode.

        Without configured tokens the request's ``tenant`` field is
        trusted (development mode).  With tokens, only a connection
        that has authenticated may submit, and a ``tenant`` field that
        contradicts the authenticated identity is rejected rather than
        believed.
        """
        if not self.service.gateway.tokens_configured:
            return str(request["tenant"])
        authed = self._authed.get(writer)
        if authed is None:
            raise AdmissionError(
                "auth_denied",
                str(request.get("tenant", "")),
                "connection is not authenticated; send "
                '{"op": "auth", "tenant": ..., "token": ...} first',
            )
        claimed = request.get("tenant")
        if claimed is not None and str(claimed) != authed:
            raise AdmissionError(
                "auth_denied",
                str(claimed),
                f"request tenant {str(claimed)!r} does not match the "
                f"authenticated tenant {authed!r}",
            )
        return authed

    async def _dispatch(self, request: dict, writer) -> dict:
        op = request.get("op")
        try:
            if op == "auth":
                tenant = str(request["tenant"])
                try:
                    self.service.gateway.authenticate(
                        tenant, request.get("token")
                    )
                except AdmissionError as exc:
                    self.service.metrics.record_reject(exc.code)
                    raise
                self._authed[writer] = tenant
                return {"ok": True, "tenant": tenant}
            if op == "submit":
                try:
                    tenant = self._effective_tenant(request, writer)
                except AdmissionError as exc:
                    self.service.metrics.record_reject(exc.code)
                    raise
                query = self.service.submit(
                    tenant, request["sql"],
                    query_id=request.get("query"),
                )
                return {
                    "ok": True,
                    "query": query.query_id,
                    "schema": [c.name for c in query.plan.schema.columns],
                }
            if op == "subscribe":
                query_id = request["query"]
                subscriber = self.service.subscribe(
                    query_id,
                    request.get("subscriber", f"sub-{len(self._streams) + 1}"),
                )
                self._streams.append((query_id, subscriber.id, writer))
                return {
                    "ok": True,
                    "subscriber": subscriber.id,
                    "cursor": subscriber.cursor,
                }
            if op == "unsubscribe":
                removed = self.service.unsubscribe(
                    request["query"], request["subscriber"]
                )
                return {"ok": True, "removed": removed}
            if op == "withdraw":
                return {"ok": True, "removed": self.service.withdraw(request["query"])}
            if op == "ingest":
                published = self.service.ingest_line(
                    request["source"], request["event"]
                )
                return {
                    "ok": True,
                    "published": {q: len(d) for q, d in published.items()},
                }
            if op == "queries":
                return {"ok": True, "queries": self.service.list_queries()}
            if op == "metrics":
                self._refresh_depths()
                return {"ok": True, "exposition": self.service.scrape()}
            if op == "lineage":
                explanation = self.service.explain_delta(
                    request["query"], int(request["seq"])
                )
                return {
                    "ok": True,
                    "traced": explanation is not None,
                    "lineage": explanation,
                }
            if op == "slowlog":
                return {"ok": True, "entries": self.service.slow_queries()}
            if op == "checkpoint":
                return {"ok": True, "directory": self.service.checkpoint(
                    request.get("directory") or None)}
            if op == "ping":
                return {"ok": True}
            return {"ok": False, "error": {
                "code": "invalid_query", "tenant": "",
                "detail": f"unknown op {op!r}"}}
        except AdmissionError as exc:
            return {"ok": False, "error": exc.as_dict()}
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": {
                "code": "invalid_query", "tenant": str(request.get("tenant", "")),
                "detail": str(exc)}}

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await writer.drain()

    async def _flush_subscribers(self) -> None:
        """Push drained deltas to every streaming connection."""
        for query_id, subscriber_id, writer in list(self._streams):
            query = self.service.session.get(query_id)
            if query is None:
                continue
            subscriber = query.subscriptions.get(subscriber_id)
            if subscriber is None or subscriber.evicted:
                if subscriber is not None and subscriber.evicted:
                    await self._send(writer, {"evicted": subscriber_id,
                                              "query": query_id})
                    self._streams.remove((query_id, subscriber_id, writer))
                continue
            for delta in subscriber.take():
                await self._send(
                    writer, {"query": query_id, "delta": delta.as_dict()}
                )


async def run_service(
    service: StandingQueryService,
    host: str,
    port: int,
    tails: dict[str, str],
    *,
    sockets: Optional[dict[str, tuple[str, int]]] = None,
    http: Optional[tuple[str, int]] = None,
    follow: bool = True,
    ready=None,
) -> ServiceServer:
    """Assemble and run one server: listen, tail, pump.

    ``tails`` maps source name → feed path; ``sockets`` maps source
    name → ``(host, port)`` to accept line-oriented feed connections
    (the ``--listen-source`` flag); ``http``, when given, is the
    ``(host, port)`` of the HTTP scrape plane (``GET /metrics`` and
    ``GET /healthz``, the ``--metrics`` flag).  With ``follow=True``
    the coroutine serves until cancelled; with ``follow=False`` it
    reads each feed to end-of-file, drains the pump, and returns (the
    CI smoke mode).  ``ready``, when given, is an
    :class:`asyncio.Event` set once the server is listening and the
    pump is running.
    """
    server = ServiceServer(service, host, port)
    await server.start()
    if http is not None:
        await server.serve_http(*http)
    for name, path in tails.items():
        server.add_tail(name, path)
    for name, (src_host, src_port) in (sockets or {}).items():
        await server.listen_source(name, src_host, src_port)
    server._follow = follow
    server.start_pump()
    if ready is not None:
        ready.set()
    if follow:
        try:
            while True:
                await asyncio.sleep(3600)
        finally:
            await server.stop()
    else:
        # Like the line-JSON listener, the HTTP plane stays open after
        # the drain so callers can still scrape; ``server.stop()``
        # closes both.
        await server.drain()
    return server
