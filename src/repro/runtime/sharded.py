"""``ShardedDataflow``: N shard dataflows behind the serial ``Dataflow`` API.

Each shard is a complete, independent :class:`~repro.exec.executor.Dataflow`
compiled from the same plan.  Row events are hash-routed to one shard by
the partition key; watermark events are broadcast so every shard's
completeness view (late-row drops, state expiry) is exactly the serial
one.  Because the analyzer admits only row-driven operators — nothing
that emits on watermark advances or timers — each output change belongs
to exactly one routed row event, and interleaving the shard output
slices in global event order reproduces the serial changelog byte for
byte (values, ``ptime``, ``undo``, ``ver``, ordering).

Two driving modes share that merge invariant:

* :meth:`process` — the incremental API: route, run, splice inline.
* :meth:`run` — the batch API: split the merged source sequence into
  per-shard subsequences, run them on a worker-pool backend
  (:mod:`repro.runtime.backends`), then merge the tagged output slices
  and replay the watermark observations into the frontier.

Checkpoints nest the shard checkpoints plus the frontier and merged
changelog, so a sharded run restores onto a fresh ``ShardedDataflow``
of the same plan and shard count.
"""

from __future__ import annotations

import pickle
from typing import Callable, Optional

from ..core.changelog import Change
from ..core.errors import ExecutionError
from ..core.times import MIN_TIMESTAMP, Timestamp
from ..core.tvr import RowEvent, StreamEvent, TimeVaryingRelation, WatermarkEvent
from ..exec.executor import Dataflow, RunResult, merge_source_events
from ..obs.metrics import merge_shard_reports
from ..obs.telemetry import RunTelemetry
from ..obs.trace import TraceEvent
from ..plan.partition import PartitionSpec
from .backends import run_shards
from .frontier import WatermarkFrontier
from .merge import merge_tagged_changes, replay_frontier
from .routing import ShardEvent, partition_events

__all__ = ["ShardedDataflow"]


class ShardedDataflow:
    """A keyed-parallel dataflow with deterministic, serial-identical output."""

    def __init__(
        self,
        plan,
        sources: dict[str, TimeVaryingRelation],
        spec: PartitionSpec,
        shards: int,
        allowed_lateness: int = 0,
        backend: str = "threads",
    ):
        if shards < 1:
            raise ExecutionError("a sharded dataflow needs at least one shard")
        self.plan = plan
        self.spec = spec
        self.backend = backend
        self._sources = {name.lower(): tvr for name, tvr in sources.items()}
        self._shards = [
            Dataflow(plan, sources, allowed_lateness) for _ in range(shards)
        ]
        self._frontier = WatermarkFrontier(shards)
        self._merged_changes: list[Change] = []
        self._last_ptime: Timestamp = MIN_TIMESTAMP
        self._trace: Optional[Callable[[TraceEvent], None]] = None

    @property
    def trace(self) -> Optional[Callable[[TraceEvent], None]]:
        """Trace hook over the whole sharded run.

        When set, the callback receives shard-tagged ``"batch"`` events
        from every shard, a ``"frontier"`` event per shard watermark
        advance, and a ``"watermark"`` event when the merged minimum
        moves — per-shard root-watermark events are folded into the
        frontier timeline rather than reported twice.  With the
        ``threads`` backend, batch events arrive from worker threads;
        the callback must tolerate concurrent calls (appending to a
        list is fine).  With the ``processes`` backend, events observed
        inside forked shard workers do not reach the parent's callback.
        """
        return self._trace

    @trace.setter
    def trace(self, callback: Optional[Callable[[TraceEvent], None]]) -> None:
        self._trace = callback
        self._frontier.trace = callback
        for index, shard in enumerate(self._shards):
            shard.trace = _shard_batch_tagger(callback, index)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[Dataflow]:
        """The underlying shard dataflows (read-only use, e.g. state reports)."""
        return list(self._shards)

    @property
    def frontier(self) -> WatermarkFrontier:
        return self._frontier

    @property
    def output_size(self) -> int:
        """Merged root changes produced so far (mirrors ``Dataflow``)."""
        return len(self._merged_changes)

    @property
    def root_watermark(self) -> Timestamp:
        """The merged (minimum) root watermark across all shards."""
        return self._frontier.current

    @property
    def telemetry(self) -> RunTelemetry:
        """Latency telemetry merged over shards.

        Watermarks are broadcast and every root change is produced by
        exactly one shard, so this merge reproduces the serial run's
        distributions sample for sample.
        """
        return RunTelemetry.merged(shard.telemetry for shard in self._shards)

    def shard_routed_rows(self) -> list[int]:
        """Rows delivered to each shard's scan leaves (the skew signal)."""
        return [shard.rows_ingested() for shard in self._shards]

    def total_state_rows(self) -> int:
        """Rows currently retained across all shards' operator state."""
        return sum(shard.total_state_rows() for shard in self._shards)

    def state_report(self):
        """Per-operator state breakdown, summed across shards."""
        from ..exec.state import collect_sharded_state

        return collect_sharded_state(self)

    # -- incremental API ---------------------------------------------------------

    def process(self, event: StreamEvent, source: str) -> None:
        """Route one source event and splice its output inline.

        Mirrors ``Dataflow.process``: events must arrive in
        processing-time order, and the merged changelog grows by exactly
        the changes the serial executor would have appended.
        """
        if event.ptime < self._last_ptime:
            raise ExecutionError("events must be fed in processing-time order")
        self._last_ptime = max(self._last_ptime, event.ptime)
        if isinstance(event, RowEvent):
            owner = self.spec.shard_of(
                source, event.change.values, len(self._shards)
            )
            targets = range(len(self._shards)) if owner is None else (owner,)
            for index in targets:
                shard = self._shards[index]
                before = shard.output_size
                shard.process(event, source)
                produced = shard.output_slice(before)
                if produced and owner is None:
                    raise ExecutionError(
                        f"broadcast row event for {source!r} produced output "
                        f"in shard {index}; the plan is not cleanly partitioned"
                    )
                self._merged_changes.extend(produced)
        elif isinstance(event, WatermarkEvent):
            for index, shard in enumerate(self._shards):
                before = shard.output_size
                shard.process(event, source)
                if shard.output_slice(before):
                    raise ExecutionError(
                        "watermark advance produced output in shard "
                        f"{index}; the partition analyzer admitted a "
                        "watermark-triggered operator it should not have"
                    )
            for index, shard in enumerate(self._shards):
                self._frontier.observe(index, event.ptime, shard.root_watermark)
        else:  # pragma: no cover — the event algebra is closed
            raise ExecutionError(f"unknown stream event {event!r}")

    def finish(self, until: Optional[Timestamp] = None) -> RunResult:
        """Drain shard timers and return the result.

        Partitionable plans schedule no processing-time timers, so the
        drain must be silent; any output here would have no routed row
        event to order by, and the merge invariant would be lost.
        """
        for index, shard in enumerate(self._shards):
            before = shard.output_size
            shard.finish(until)
            if shard.output_slice(before):
                raise ExecutionError(
                    f"timer drain produced output in shard {index}; the "
                    "partition analyzer admitted a timer-driven operator "
                    "it should not have"
                )
        return self.result()

    # -- batch API ---------------------------------------------------------------

    def run(self, until: Optional[Timestamp] = None) -> RunResult:
        """Replay all source events (up to ``until``) on the worker pool."""
        events = merge_source_events(self._sources, until)
        if self.backend == "sync":
            for event, source in events:
                self.process(event, source)
            return self.finish(until)
        self._run_batch(events, until)
        return self.result()

    def _run_batch(
        self, events: list[tuple[StreamEvent, str]], until: Optional[Timestamp]
    ) -> None:
        tasks = partition_events(events, self.spec, len(self._shards))
        transfer_state = self.backend == "processes"

        def make_worker(index: int):
            shard = self._shards[index]
            shard_tasks = tasks[index]

            def worker():
                slices, observations = _drive_shard(shard, shard_tasks, until)
                state = shard.checkpoint() if transfer_state else None
                return slices, observations, state

            return worker

        outcomes = run_shards(
            [make_worker(i) for i in range(len(self._shards))], self.backend
        )
        if transfer_state:
            # Fork-based workers mutated copies; pull each shard's final
            # state back via its checkpoint bytes.
            for shard, (_, _, state) in zip(self._shards, outcomes):
                if state is not None:
                    shard.restore(state)
        self._merged_changes.extend(
            merge_tagged_changes([slices for slices, _, _ in outcomes])
        )
        replay_frontier(
            self._frontier, [observations for _, observations, _ in outcomes]
        )
        for event, _ in events:
            if event.ptime > self._last_ptime:
                self._last_ptime = event.ptime

    # -- results -----------------------------------------------------------------

    def result(self) -> RunResult:
        """The merged result accumulated so far.

        Counters sum over shards: watermarks are broadcast, so every
        shard applies the serial completeness rules to exactly the rows
        routed to it, and the totals (late drops, expiries, rows in/out)
        equal the serial run's.  The attached metrics report additionally
        keeps the per-shard breakdown, surfacing routing skew.
        """
        shard_results = [shard.result() for shard in self._shards]
        return RunResult(
            schema=self.plan.schema,
            changes=list(self._merged_changes),
            watermarks=self._frontier.merged,
            last_ptime=max(
                [self._last_ptime] + [r.last_ptime for r in shard_results]
            ),
            late_dropped=sum(r.late_dropped for r in shard_results),
            expired_rows=sum(r.expired_rows for r in shard_results),
            peak_state_rows=sum(r.peak_state_rows for r in shard_results),
            metrics=self.metrics_report(),
        )

    def metrics_report(self):
        """Per-operator totals over shards, plus per-shard breakdowns."""
        return merge_shard_reports(
            [shard.metrics_report() for shard in self._shards]
        )

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> bytes:
        """A consistent snapshot of every shard plus the merge state."""
        payload = {
            "shard_count": len(self._shards),
            "shards": [shard.checkpoint() for shard in self._shards],
            "frontier": self._frontier.snapshot(),
            "merged_changes": list(self._merged_changes),
            "last_ptime": self._last_ptime,
        }
        return pickle.dumps(payload)

    def restore(self, checkpoint: bytes) -> None:
        """Restore a checkpoint from a sharded run of the same plan and width."""
        payload = pickle.loads(checkpoint)
        if payload["shard_count"] != len(self._shards):
            raise ExecutionError(
                f"checkpoint has {payload['shard_count']} shards, this "
                f"dataflow has {len(self._shards)}"
            )
        for shard, blob in zip(self._shards, payload["shards"]):
            shard.restore(blob)
        self._frontier.restore(payload["frontier"])
        self._merged_changes = list(payload["merged_changes"])
        self._last_ptime = payload["last_ptime"]


def _shard_batch_tagger(
    callback: Optional[Callable[[TraceEvent], None]], shard: int
) -> Optional[Callable[[TraceEvent], None]]:
    """Forward a shard's batch events, tagged with its index.

    Shard-local watermark events are swallowed: the frontier reports
    the same advances as ``"frontier"`` events, with the merged-minimum
    ``"watermark"`` events layered on top, so a collector's
    ``watermark_advances`` means the same thing serial or sharded.
    """
    if callback is None:
        return None

    def forward(event: TraceEvent) -> None:
        if event.kind == "batch":
            callback(event.at_shard(shard))

    return forward


def _drive_shard(
    shard: Dataflow,
    tasks: list[ShardEvent],
    until: Optional[Timestamp],
) -> tuple[list[tuple[int, list[Change]]], list[tuple[int, Timestamp, Timestamp]]]:
    """Run one shard's subsequence, tagging outputs by global sequence."""
    slices: list[tuple[int, list[Change]]] = []
    observations: list[tuple[int, Timestamp, Timestamp]] = []
    for seq, event, source in tasks:
        before = shard.output_size
        shard.process(event, source)
        produced = shard.output_slice(before)
        if produced:
            if isinstance(event, WatermarkEvent):
                raise ExecutionError(
                    "watermark advance produced output in a shard; the "
                    "partition analyzer admitted a watermark-triggered "
                    "operator it should not have"
                )
            slices.append((seq, produced))
        if isinstance(event, WatermarkEvent):
            observations.append((seq, event.ptime, shard.root_watermark))
    before = shard.output_size
    shard.finish(until)
    if shard.output_slice(before):
        raise ExecutionError(
            "timer drain produced output in a shard; the partition "
            "analyzer admitted a timer-driven operator it should not have"
        )
    return slices, observations
