"""``ShardedDataflow``: N shard dataflows behind the serial ``Dataflow`` API.

Each shard is a complete, independent :class:`~repro.exec.executor.Dataflow`
compiled from the same plan.  Row events are hash-routed to one shard by
the partition key; watermark events are broadcast so every shard's
completeness view (late-row drops, state expiry) is exactly the serial
one.  Because the analyzer admits only row-driven operators — nothing
that emits on watermark advances or timers — each output change belongs
to exactly one routed row event, and interleaving the shard output
slices in global event order reproduces the serial changelog byte for
byte (values, ``ptime``, ``undo``, ``ver``, ordering).

Two driving modes share that merge invariant:

* :meth:`process` — the incremental API: route, run, splice inline.
* :meth:`run` — the batch API: split the merged source sequence into
  per-shard subsequences, run them on a worker-pool backend
  (:mod:`repro.runtime.backends`) under a per-shard supervisor
  (:mod:`repro.runtime.supervisor`) that restarts failed workers from
  their last checkpoint, then dedup re-emitted slices by sequence
  number, merge the tagged output slices, and replay the watermark
  observations into the frontier.

With ``two_phase=True``, eligible grouped-aggregate plans run split:
each shard executes the plan's *partial* half (folding only its routed
rows into per-group payloads), and a
:class:`~repro.runtime.combine.CombineStage` behind the merge point
folds those payloads into the final aggregate changelog.  Payload
slices and watermark observations are applied to the stage in global
sequence order — the same interleaving the serial executor sees — so
the spliced output keeps the serial guarantee while the merge path
carries one payload per shard batch instead of one change per input
row.  Plans the physical planner cannot split (see
:mod:`repro.plan.physical`) simply run single-phase.

Like the serial executor, a sharded dataflow can host several output
channels over shared subplans (:meth:`attach_output` /
:meth:`remove_output`): each shard grafts the new plan onto its local
DAG, and the merge layer keeps a per-output merged changelog and
watermark frontier.  Sharing requires the queries to agree on the
partitioning spec — rows must co-locate identically or shard-local
state would diverge from the serial oracle.

Checkpoints nest the shard checkpoints plus the frontiers and merged
changelogs, so a sharded run restores onto a fresh ``ShardedDataflow``
of the same structure and shard count.
"""

from __future__ import annotations

import pickle
from typing import Callable, Optional, Sequence

from ..core.changelog import Change
from ..core.errors import ExecutionError
from ..core.times import MIN_TIMESTAMP, Timestamp
from ..core.tvr import RowEvent, StreamEvent, TimeVaryingRelation, WatermarkEvent
from ..exec.executor import Dataflow, RunResult, merge_source_events
from ..obs.lineage import LineageRecorder
from ..obs.metrics import RecoveryStats, merge_shard_reports
from ..obs.telemetry import RunTelemetry
from ..obs.trace import TraceEvent
from ..plan.partition import PartitionSpec
from ..plan.physical import TwoPhaseSplit, split_eligibility
from .backends import run_shards
from .combine import CombineStage
from .faults import FaultInjector, FaultPlan
from .frontier import WatermarkFrontier
from .merge import (
    TaggedSlice,
    WatermarkObservation,
    dedup_by_seq,
    dedup_observations,
    merge_tagged_changes,
    merge_tagged_slices,
    replay_frontier,
)
from .routing import partition_events
from .supervisor import RetryPolicy, ShardSupervisor


__all__ = ["ShardedDataflow"]


class _OutputMerge:
    """Per-output merge state: the spliced changelog and its frontier."""

    __slots__ = ("merged", "frontier")

    def __init__(self, shards: int):
        self.merged: list[Change] = []
        self.frontier = WatermarkFrontier(shards)


class ShardedDataflow:
    """A keyed-parallel dataflow with deterministic, serial-identical output."""

    def __init__(
        self,
        plan,
        sources: dict[str, TimeVaryingRelation],
        spec: PartitionSpec,
        shards: int,
        allowed_lateness: int = 0,
        backend: str = "threads",
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        batch_size: int = 1,
        coalesce_updates: bool = False,
        two_phase: bool = False,
        output_id: str = "main",
        columnar: str = "off",
    ):
        if shards < 1:
            raise ExecutionError("a sharded dataflow needs at least one shard")
        self.plan = plan
        self.spec = spec
        self.backend = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.batch_size = batch_size
        self.coalesce_updates = coalesce_updates
        self.two_phase = two_phase
        self.columnar = columnar
        self._allowed_lateness = allowed_lateness
        self._raw_sources = sources
        self._sources = {name.lower(): tvr for name, tvr in sources.items()}
        #: per-output physical split and its combine stage; an output
        #: absent from these maps runs single-phase.
        self._splits: dict[str, TwoPhaseSplit] = {}
        self._stages: dict[str, CombineStage] = {}
        split = self._prepare_split(plan)
        shard_plan = split.shard_plan if split is not None else plan
        self._shards = [
            Dataflow(
                shard_plan,
                sources,
                allowed_lateness,
                batch_size=batch_size,
                coalesce_updates=coalesce_updates,
                output_id=output_id,
                columnar=columnar,
            )
            for _ in range(shards)
        ]
        if split is not None:
            self._splits[output_id] = split
            self._stages[output_id] = CombineStage(
                split, allowed_lateness, coalesce_updates
            )
        self._outputs: dict[str, _OutputMerge] = {
            output_id: _OutputMerge(shards)
        }
        self._primary = output_id
        self._last_ptime: Timestamp = MIN_TIMESTAMP
        self._trace: Optional[Callable[[TraceEvent], None]] = None
        self._recovery = RecoveryStats()
        #: optional lineage recorder shared with every shard flow;
        #: install via :meth:`set_lineage`.
        self.lineage: Optional[LineageRecorder] = None

    def _prepare_split(self, plan) -> Optional[TwoPhaseSplit]:
        """The plan's two-phase split, if this flow runs two-phase.

        The split is recomputed deterministically wherever the flow is
        (re)built — checkpoints carry only the stage *state*, never the
        rewritten plan.  ``delta_mode`` tracks the flow's
        ``coalesce_updates`` flag: with coalescing on, byte-level output
        identity is already waived, so partials ship folded per-group
        deltas instead of replayable per-row entries.
        """
        if not self.two_phase:
            return None
        split, _ = split_eligibility(plan)
        if split is not None:
            split.partial.delta_mode = self.coalesce_updates
        return split

    @property
    def _frontier(self) -> WatermarkFrontier:
        return self._outputs[self._primary].frontier

    @property
    def _merged_changes(self) -> list[Change]:
        return self._outputs[self._primary].merged

    @property
    def trace(self) -> Optional[Callable[[TraceEvent], None]]:
        """Trace hook over the whole sharded run.

        When set, the callback receives shard-tagged ``"batch"`` events
        from every shard, a ``"frontier"`` event per shard watermark
        advance, and a ``"watermark"`` event when the merged minimum
        moves — per-shard root-watermark events are folded into the
        frontier timeline rather than reported twice.  With the
        ``threads`` backend, batch events arrive from worker threads;
        the callback must tolerate concurrent calls (appending to a
        list is fine).  With the ``processes`` backend, events observed
        inside forked shard workers do not reach the parent's callback.
        """
        return self._trace

    @trace.setter
    def trace(self, callback: Optional[Callable[[TraceEvent], None]]) -> None:
        self._trace = callback
        self._frontier.trace = callback
        for index, shard in enumerate(self._shards):
            shard.trace = _shard_batch_tagger(callback, index)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[Dataflow]:
        """The underlying shard dataflows (read-only use, e.g. state reports)."""
        return list(self._shards)

    @property
    def frontier(self) -> WatermarkFrontier:
        return self._frontier

    @property
    def output_size(self) -> int:
        """Merged primary-output changes so far (mirrors ``Dataflow``)."""
        return len(self._merged_changes)

    def output_slice(self, start: int = 0) -> list:
        """Merged primary-output changes from ``start`` (mirrors ``Dataflow``).

        The merged changelog only grows, so ``output_slice(cursor)``
        after each :meth:`process` yields every change exactly once —
        the incremental consumption contract service mode relies on.
        """
        return list(self._merged_changes[start:])

    @property
    def root_watermark(self) -> Timestamp:
        """The merged (minimum) primary root watermark across all shards."""
        return self._frontier.current

    def output_ids(self) -> list[str]:
        """The attached output channels, in attach order."""
        return list(self._outputs)

    def output_size_of(self, output_id: str) -> int:
        return len(self._outputs[output_id].merged)

    def output_slice_of(self, output_id: str, start: int = 0) -> list[Change]:
        return list(self._outputs[output_id].merged[start:])

    def root_watermark_of(self, output_id: str) -> Timestamp:
        return self._outputs[output_id].frontier.current

    def state_rows_of(self, output_id: str) -> int:
        """Rows retained by the operators ``output_id`` reads, all shards."""
        total = sum(shard.state_rows_of(output_id) for shard in self._shards)
        stage = self._stages.get(output_id)
        if stage is not None:
            total += stage.state_rows()
        return total

    def is_two_phase(self, output_id: Optional[str] = None) -> bool:
        """Whether ``output_id`` (default: primary) runs split aggregation."""
        return (output_id if output_id is not None else self._primary) in (
            self._stages
        )

    def combine_stage(self, output_id: Optional[str] = None):
        """The output's :class:`CombineStage`, or ``None`` if single-phase."""
        return self._stages.get(
            output_id if output_id is not None else self._primary
        )

    @property
    def telemetry(self) -> RunTelemetry:
        """Latency telemetry merged over shards.

        Watermarks are broadcast and every root change is produced by
        exactly one shard (or, two-phase, by the combine stage fed in
        that shard's slice position), so this merge reproduces the
        serial run's distributions sample for sample.
        """
        return self.telemetry_of(self._primary)

    def telemetry_of(self, output_id: str) -> RunTelemetry:
        """One output channel's latency telemetry, merged over shards.

        For a two-phase output the shards emit partial payloads, not
        query rows, so the combine stage's telemetry — one sample per
        final root change, taken at the merged frontier — *is* the
        channel's telemetry, and the shard channels contribute nothing.
        """
        stage = self._stages.get(output_id)
        if stage is not None:
            return RunTelemetry.merged([stage.telemetry])
        return RunTelemetry.merged(
            shard.telemetry_of(output_id) for shard in self._shards
        )

    def set_lineage(self, recorder: Optional[LineageRecorder]) -> None:
        """Install (or remove) one lineage recorder across all shards.

        The parent makes the sampling decision once per routed event
        (so per-source ordinals — and therefore the sampled set — match
        the serial run exactly, even though watermarks are broadcast to
        every shard) and assigns merged-changelog positions; the shard
        flows record the operator path, tagged with their index.
        Lineage rides the incremental :meth:`process` path — the one
        service mode drives; supervised batch runs leave it inert.
        """
        self.lineage = recorder
        for index, shard in enumerate(self._shards):
            shard.set_lineage(recorder, shard=index, register_outputs=False)

    def shard_routed_rows(self) -> list[int]:
        """Rows delivered to each shard's scan leaves (the skew signal)."""
        return [shard.rows_ingested() for shard in self._shards]

    def total_state_rows(self) -> int:
        """Rows currently retained across all shards' operator state."""
        return sum(shard.total_state_rows() for shard in self._shards) + sum(
            stage.state_rows() for stage in self._stages.values()
        )

    def changes_coalesced(self) -> int:
        """Changes dropped by intra-instant compaction, over all shards."""
        return sum(shard.changes_coalesced() for shard in self._shards) + sum(
            stage.changes_coalesced() for stage in self._stages.values()
        )

    def state_report(self):
        """Per-operator state breakdown, summed across shards."""
        from ..exec.state import collect_sharded_state

        return collect_sharded_state(self)

    # -- multi-query sharing ------------------------------------------------------

    def plan_overlap(self, plan) -> int:
        """Resident-subplan coverage of ``plan`` (every shard is identical)."""
        return self._shards[0].plan_overlap(plan)

    def shared_operator_count(self) -> int:
        """Operators read by two or more outputs (counted once, via shard 0)."""
        return self._shards[0].shared_operator_count()

    def attached_operator_count(self) -> int:
        return self._shards[0].attached_operator_count()

    def resident_operator_count(self) -> int:
        return len(self._shards[0].operators)

    def sharing_map(self) -> dict[str, list[int]]:
        """Per-output operator indices (identical across shards)."""
        return self._shards[0].sharing_map()

    def attach_output(
        self,
        output_id: str,
        plan,
        donor: Optional["ShardedDataflow"] = None,
        allow_root_share: bool = True,
    ):
        """Graft ``plan`` onto every shard as a new output channel.

        ``donor`` must be a caught-up ``ShardedDataflow`` of the same
        shard count built over the *same* partition spec — rows must
        co-locate identically for shard-local shared state to stay
        byte-equal to the unshared run.  Shard *i* transplants from the
        donor's shard *i*; the merge layer takes over the donor's
        primary merged changelog and frontier.
        """
        if output_id in self._outputs:
            raise ExecutionError(f"output {output_id!r} is already attached")
        split = self._prepare_split(plan)
        if donor is not None:
            if donor.shard_count != self.shard_count:
                raise ExecutionError(
                    "donor shard count does not match the host dataflow"
                )
            if donor.spec != self.spec:
                raise ExecutionError(
                    "donor partition spec does not match the host dataflow"
                )
            donor_split = donor._splits.get(donor._primary)
            if (split is None) != (donor_split is None):
                raise ExecutionError(
                    "donor and host disagree on two-phase aggregation for "
                    "this plan; shard-local state would not transplant"
                )
            if donor_split is not None:
                # Adopt the donor's rewrite wholesale: shard-level
                # transplanting matches operators by logical-node
                # *identity*, so the attach must use the very plan
                # object the donor's shards were compiled from.
                split = donor_split
        shard_plan = split.shard_plan if split is not None else plan
        for index, shard in enumerate(self._shards):
            shard.attach_output(
                output_id,
                shard_plan,
                donor=donor._shards[index] if donor is not None else None,
                allow_root_share=allow_root_share,
            )
        merge = _OutputMerge(len(self._shards))
        if split is not None:
            self._splits[output_id] = split
            if donor is not None:
                # The donor's combine stage carries the global per-group
                # accumulators matching the transplanted shard state.
                self._stages[output_id] = donor._stages[donor._primary]
            else:
                self._stages[output_id] = CombineStage(
                    split, self._allowed_lateness, self.coalesce_updates
                )
        if donor is not None:
            donor_merge = donor._outputs[donor._primary]
            merge.merged = donor_merge.merged
            merge.frontier = donor_merge.frontier
            self._last_ptime = max(self._last_ptime, donor._last_ptime)
        self._outputs[output_id] = merge
        return merge

    def remove_output(self, output_id: str) -> bool:
        """Detach an output from every shard (ref-counted teardown)."""
        if output_id not in self._outputs:
            return False
        for shard in self._shards:
            shard.remove_output(output_id)
        del self._outputs[output_id]
        self._splits.pop(output_id, None)
        self._stages.pop(output_id, None)
        return True

    # -- incremental API ---------------------------------------------------------

    def process(self, event: StreamEvent, source: str) -> None:
        """Route one source event and splice its output inline.

        Mirrors ``Dataflow.process``: events must arrive in
        processing-time order, and each output's merged changelog grows
        by exactly the changes the serial executor would have appended.
        """
        if event.ptime < self._last_ptime:
            raise ExecutionError("events must be fed in processing-time order")
        self._last_ptime = max(self._last_ptime, event.ptime)
        recorder = self.lineage
        if recorder is not None:
            # The parent claims the per-source ordinal and makes the
            # sampling decision once; shard flows replay it via the
            # pending context, so lineage sampling is identical to the
            # serial run however the event is routed or broadcast.
            seq = recorder.offer(source)
            if seq is None:
                recorder.set_pending(None)
            elif isinstance(event, RowEvent):
                recorder.set_pending(
                    recorder.trace_event(
                        source,
                        seq,
                        kind="source",
                        values=event.change.values,
                        ptime=event.ptime,
                    )
                )
            else:
                recorder.set_pending(
                    recorder.trace_event(
                        source,
                        seq,
                        kind="watermark",
                        values=event.value,
                        ptime=event.ptime,
                    )
                )
        try:
            self._route(event, source)
        finally:
            if recorder is not None:
                recorder.clear_pending()

    def _route(self, event: StreamEvent, source: str) -> None:
        recorder = self.lineage
        if isinstance(event, RowEvent):
            owner = self.spec.shard_of(
                source, event.change.values, len(self._shards)
            )
            targets = range(len(self._shards)) if owner is None else (owner,)
            for index in targets:
                shard = self._shards[index]
                before = {
                    oid: shard.output_size_of(oid) for oid in self._outputs
                }
                merged_at: dict[str, int] = {}
                shard.process(event, source)
                for oid, merge in self._outputs.items():
                    produced = shard.output_slice_of(oid, before[oid])
                    if produced and owner is None:
                        raise ExecutionError(
                            f"broadcast row event for {source!r} produced "
                            f"output in shard {index}; the plan is not "
                            "cleanly partitioned"
                        )
                    stage = self._stages.get(oid)
                    if stage is not None and produced:
                        # Two-phase: the shard emitted partial payloads;
                        # fold them through the combine stage and splice
                        # the *final* changes instead.
                        produced = stage.feed(produced, merge.frontier.current)
                    merged_at[oid] = len(merge.merged)
                    merge.merged.extend(produced)
                if recorder is not None:
                    # Shard notes arrive in production order; walk each
                    # output's cursor forward over the spliced slice.
                    for oid, cause, count in recorder.drain_shard_notes():
                        start = merged_at[oid]
                        if oid in self._stages:
                            # The note counted partial payloads; what
                            # landed in the merged changelog is the
                            # combine stage's output for this event.
                            count = len(self._outputs[oid].merged) - start
                        recorder.record_output(
                            cause, oid, range(start, start + count)
                        )
                        merged_at[oid] = start + count
        elif isinstance(event, WatermarkEvent):
            for index, shard in enumerate(self._shards):
                before = {
                    oid: shard.output_size_of(oid) for oid in self._outputs
                }
                shard.process(event, source)
                if any(
                    shard.output_size_of(oid) != before[oid]
                    for oid in self._outputs
                ):
                    raise ExecutionError(
                        "watermark advance produced output in shard "
                        f"{index}; the partition analyzer admitted a "
                        "watermark-triggered operator it should not have"
                    )
            for oid, merge in self._outputs.items():
                stage = self._stages.get(oid)
                for index, shard in enumerate(self._shards):
                    advanced = merge.frontier.observe(
                        index, event.ptime, shard.root_watermark_of(oid)
                    )
                    if stage is not None and advanced is not None:
                        # The merged frontier moved: free combine-stage
                        # state exactly when the serial root would.
                        stage.advance(advanced, event.ptime)
        else:  # pragma: no cover — the event algebra is closed
            raise ExecutionError(f"unknown stream event {event!r}")

    def finish(self, until: Optional[Timestamp] = None) -> RunResult:
        """Drain shard timers and return the result.

        Partitionable plans schedule no processing-time timers, so the
        drain must be silent; any output here would have no routed row
        event to order by, and the merge invariant would be lost.
        """
        for index, shard in enumerate(self._shards):
            before = {
                oid: shard.output_size_of(oid) for oid in self._outputs
            }
            shard.finish(until)
            if any(
                shard.output_size_of(oid) != before[oid]
                for oid in self._outputs
            ):
                raise ExecutionError(
                    f"timer drain produced output in shard {index}; the "
                    "partition analyzer admitted a timer-driven operator "
                    "it should not have"
                )
        return self.result()

    # -- batch API ---------------------------------------------------------------

    def run(self, until: Optional[Timestamp] = None) -> RunResult:
        """Replay all source events (up to ``until``) on the worker pool.

        Batch runs are *supervised*: each shard worker restarts from
        its last checkpoint on failure (including faults injected by
        ``fault_plan``) with the retries, backoff, and replay dedup the
        :class:`~repro.runtime.supervisor.ShardSupervisor` implements.
        The ``sync`` backend drives the incremental reference path
        unless a fault plan demands supervision.
        """
        events = merge_source_events(self._sources, until)
        if (
            self.backend == "sync"
            and self.fault_plan is None
            and self.batch_size <= 1
        ):
            for event, source in events:
                self.process(event, source)
            return self.finish(until)
        self._run_batch(events, until)
        return self.result()

    def _run_batch(
        self, events: list[tuple[StreamEvent, str]], until: Optional[Timestamp]
    ) -> None:
        if len(self._outputs) > 1:
            raise ExecutionError(
                "supervised batch runs drive a single output; multi-output "
                "sharded dataflows must use the incremental process() API"
            )
        tasks = partition_events(events, self.spec, len(self._shards))
        transfer_state = self.backend == "processes"
        injector = FaultInjector(self.fault_plan)
        trace = self._trace
        split = self._splits.get(self._primary)
        shard_plan = split.shard_plan if split is not None else self.plan

        def make_supervisor(index: int) -> ShardSupervisor:
            def make_dataflow() -> Dataflow:
                flow = Dataflow(
                    shard_plan,
                    self._raw_sources,
                    self._allowed_lateness,
                    batch_size=self.batch_size,
                    coalesce_updates=self.coalesce_updates,
                    output_id=self._primary,
                    columnar=self.columnar,
                )
                flow.trace = _shard_batch_tagger(trace, index)
                return flow

            return ShardSupervisor(
                shard=index,
                dataflow=self._shards[index],
                make_dataflow=make_dataflow,
                tasks=tasks[index],
                until=until,
                policy=self.retry,
                injector=injector,
                transfer_state=transfer_state,
            )

        supervisors = [make_supervisor(i) for i in range(len(self._shards))]
        outcomes = run_shards(
            [supervisor.run for supervisor in supervisors], self.backend
        )
        for index, (supervisor, outcome) in enumerate(
            zip(supervisors, outcomes)
        ):
            if transfer_state:
                # Fork-based workers mutated copies; pull each shard's
                # final state back via its checkpoint bytes.
                if outcome.state is not None:
                    self._shards[index].restore(outcome.state)
            else:
                # Thread workers may have replaced a restarted shard's
                # dataflow with the restored instance.
                self._shards[index] = supervisor.final_flow
            self._recovery.merge(outcome.stats)
            # Recovery trace events are forwarded post-hoc in shard
            # order, so the annotated trace log is deterministic across
            # backends (forked workers cannot reach the parent's hook).
            if trace is not None:
                for event in outcome.events:
                    trace(event)
        deduped_slices = []
        for outcome in outcomes:
            unique, drops = dedup_by_seq(outcome.slices)
            self._recovery.dedup_drops += drops
            deduped_slices.append(unique)
        observations = [
            dedup_observations(outcome.observations) for outcome in outcomes
        ]
        stage = self._stages.get(self._primary)
        if stage is None:
            self._merged_changes.extend(merge_tagged_changes(deduped_slices))
            replay_frontier(self._frontier, observations)
        else:
            self._replay_two_phase(stage, deduped_slices, observations)
        for event, _ in events:
            if event.ptime > self._last_ptime:
                self._last_ptime = event.ptime

    def _replay_two_phase(
        self,
        stage: CombineStage,
        deduped_slices: list[list[TaggedSlice]],
        observations: list[list[WatermarkObservation]],
    ) -> None:
        """Drive the combine stage from a supervised batch run's logs.

        Payload slices and watermark observations are interleaved in
        global sequence order — exactly how the incremental path would
        have fed the stage — so a batch run's merged changelog matches
        the synchronous reference byte for byte.  (An event sequence
        number names either a routed row batch or a broadcast
        watermark, never both.)
        """
        merge = self._outputs[self._primary]
        slices = merge_tagged_slices(deduped_slices)
        by_seq: dict[int, list[tuple[int, Timestamp, Timestamp]]] = {}
        for shard, obs in enumerate(observations):
            for seq, ptime, value in obs:
                by_seq.setdefault(seq, []).append((shard, ptime, value))
        slice_index = 0
        for seq in sorted(set(by_seq) | {s for s, _ in slices}):
            while slice_index < len(slices) and slices[slice_index][0] == seq:
                merge.merged.extend(
                    stage.feed(
                        slices[slice_index][1], merge.frontier.current
                    )
                )
                slice_index += 1
            for shard, ptime, value in sorted(by_seq.get(seq, ())):
                advanced = merge.frontier.observe(shard, ptime, value)
                if advanced is not None:
                    stage.advance(advanced, ptime)

    @property
    def recovery(self) -> RecoveryStats:
        """Recovery accounting so far (restarts, replay, dedup, clamps)."""
        stats = RecoveryStats(
            shard_restarts=self._recovery.shard_restarts,
            rows_replayed=self._recovery.rows_replayed,
            dedup_drops=self._recovery.dedup_drops,
            wm_regressions=self._recovery.wm_regressions
            + self._frontier.wm_regressions,
        )
        return stats

    # -- results -----------------------------------------------------------------

    def result(self) -> RunResult:
        """The merged result accumulated so far (primary output).

        Counters sum over shards: watermarks are broadcast, so every
        shard applies the serial completeness rules to exactly the rows
        routed to it, and the totals (late drops, expiries, rows in/out)
        equal the serial run's.  The attached metrics report additionally
        keeps the per-shard breakdown, surfacing routing skew.
        """
        shard_results = [shard.result() for shard in self._shards]
        return RunResult(
            schema=self.plan.schema,
            changes=list(self._merged_changes),
            watermarks=self._frontier.merged,
            last_ptime=max(
                [self._last_ptime] + [r.last_ptime for r in shard_results]
            ),
            late_dropped=sum(r.late_dropped for r in shard_results),
            expired_rows=sum(r.expired_rows for r in shard_results)
            + sum(s.expired_rows() for s in self._stages.values()),
            peak_state_rows=sum(r.peak_state_rows for r in shard_results)
            + sum(s.peak_state_rows() for s in self._stages.values()),
            metrics=self.metrics_report(),
        )

    def metrics_report(self, output_id: Optional[str] = None):
        """Per-operator totals over shards, plus per-shard breakdowns.

        The merged report also carries the run's recovery accounting
        (shard restarts, rows replayed, dedup drops, watermark clamps)
        — zero-valued for a fault-free run, ``None`` only on serial
        reports.
        """
        report = merge_shard_reports(
            [shard.metrics_report(output_id) for shard in self._shards]
        )
        report.recovery = self.recovery
        stage = self._stages.get(
            output_id if output_id is not None else self._primary
        )
        if stage is not None:
            # The combine stage sits above the shards' partial trees:
            # its operators head the report at depths 0..k-1 and every
            # shard entry shifts below them, so the rendered tree reads
            # root-first like the physical plan actually executed.
            stage_entries = stage.metrics_entries()
            for entry in report.operators:
                entry["depth"] += len(stage_entries)
            report.operators[:0] = stage_entries
            report.telemetry = self.telemetry_of(
                output_id if output_id is not None else self._primary
            )
        return report

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> bytes:
        """A consistent snapshot of every shard plus the merge state."""
        payload = {
            "shard_count": len(self._shards),
            "shards": [shard.checkpoint() for shard in self._shards],
            "output_order": list(self._outputs),
            "outputs": {
                oid: {
                    "merged": list(merge.merged),
                    "frontier": merge.frontier.snapshot(),
                }
                for oid, merge in self._outputs.items()
            },
            "last_ptime": self._last_ptime,
            # Combine stages carry *state*, never structure: a restored
            # flow recomputes the physical split from its own plan, so
            # the checkpoint stays valid across planner-identical
            # rebuilds (mirroring how shard plans are never pickled).
            "two_phase_outputs": sorted(self._stages),
            "stages": {
                oid: stage.snapshot() for oid, stage in self._stages.items()
            },
            "recovery": self._recovery.as_dict(),
            # Shard blobs carry no lineage (they don't own the shared
            # recorder); the parent snapshots it exactly once.
            "lineage": (
                self.lineage.snapshot() if self.lineage is not None else None
            ),
        }
        return pickle.dumps(payload)

    def restore(self, checkpoint: bytes) -> None:
        """Restore a checkpoint of the same structure and shard width."""
        payload = pickle.loads(checkpoint)
        if payload["shard_count"] != len(self._shards):
            raise ExecutionError(
                f"checkpoint has {payload['shard_count']} shards, this "
                f"dataflow has {len(self._shards)}"
            )
        for shard, blob in zip(self._shards, payload["shards"]):
            shard.restore(blob)
        if "outputs" in payload:
            if set(payload["output_order"]) != set(self._outputs):
                raise ExecutionError(
                    "checkpoint does not match this dataflow's outputs"
                )
            for oid, stored in payload["outputs"].items():
                merge = self._outputs[oid]
                merge.merged = list(stored["merged"])
                merge.frontier.restore(stored["frontier"])
        else:  # pre-DAG checkpoint shape
            merge = self._outputs[self._primary]
            merge.frontier.restore(payload["frontier"])
            merge.merged = list(payload["merged_changes"])
        self._last_ptime = payload["last_ptime"]
        stored_stages = payload.get("stages", {})
        if set(stored_stages) != set(self._stages):
            raise ExecutionError(
                "checkpoint two-phase outputs "
                f"{sorted(stored_stages)} do not match this dataflow's "
                f"{sorted(self._stages)}"
            )
        for oid, blob in stored_stages.items():
            self._stages[oid].restore(blob)
        # Absent in pre-supervisor checkpoints; start the ledger fresh.
        self._recovery = RecoveryStats(**payload.get("recovery", {}))
        if payload.get("lineage") is not None:
            self.set_lineage(LineageRecorder.restore(payload["lineage"]))

    @classmethod
    def from_structure(
        cls,
        plans: Sequence[tuple[str, "object"]],
        structure: dict,
        sources: dict[str, TimeVaryingRelation],
        spec: PartitionSpec,
        shards: int,
        allowed_lateness: int = 0,
        backend: str = "threads",
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        batch_size: int = 1,
        coalesce_updates: bool = False,
        two_phase: bool = False,
        columnar: str = "off",
    ) -> "ShardedDataflow":
        """Rebuild a multi-output sharded dataflow from a checkpoint recipe.

        ``structure`` is one shard's checkpoint payload (all shards are
        structurally identical); see ``Dataflow.from_structure``.  With
        ``two_phase`` the physical split is recomputed per plan — the
        rewrite is deterministic, so the rebuilt shard trees match the
        checkpointed ones.  Call :meth:`restore` with the full sharded
        checkpoint afterwards.
        """
        if shards < 1:
            raise ExecutionError("a sharded dataflow needs at least one shard")
        self = cls.__new__(cls)
        self.plan = plans[0][1]
        self.spec = spec
        self.backend = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.batch_size = batch_size
        self.coalesce_updates = coalesce_updates
        self.two_phase = two_phase
        self.columnar = columnar
        self._allowed_lateness = allowed_lateness
        self._raw_sources = sources
        self._sources = {name.lower(): tvr for name, tvr in sources.items()}
        self._splits = {}
        self._stages = {}
        shard_plans = []
        for oid, plan in plans:
            split = self._prepare_split(plan)
            if split is not None:
                self._splits[oid] = split
                self._stages[oid] = CombineStage(
                    split, allowed_lateness, coalesce_updates
                )
                shard_plans.append((oid, split.shard_plan))
            else:
                shard_plans.append((oid, plan))
        self._shards = [
            Dataflow.from_structure(
                shard_plans,
                structure,
                sources,
                allowed_lateness,
                batch_size=batch_size,
                coalesce_updates=coalesce_updates,
                columnar=columnar,
            )
            for _ in range(shards)
        ]
        self._outputs = {oid: _OutputMerge(shards) for oid, _ in plans}
        self._primary = plans[0][0]
        self._last_ptime = MIN_TIMESTAMP
        self._trace = None
        self._recovery = RecoveryStats()
        self.lineage = None
        return self


def _shard_batch_tagger(
    callback: Optional[Callable[[TraceEvent], None]], shard: int
) -> Optional[Callable[[TraceEvent], None]]:
    """Forward a shard's batch events, tagged with its index.

    Shard-local watermark events are swallowed: the frontier reports
    the same advances as ``"frontier"`` events, with the merged-minimum
    ``"watermark"`` events layered on top, so a collector's
    ``watermark_advances`` means the same thing serial or sharded.
    """
    if callback is None:
        return None

    def forward(event: TraceEvent) -> None:
        if event.kind == "batch":
            callback(event.at_shard(shard))

    return forward
