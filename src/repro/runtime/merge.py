"""The deterministic merge stage: shard changelogs → serial changelog.

Every output change of a partitionable plan is *row-driven*: the
analyzer excludes all operators that emit on watermark advances or
processing-time timers, so each change is caused by exactly one input
row event, which was routed to exactly one shard.  Tagging shard output
slices with the triggering event's global sequence number therefore
gives a total order — sorting by it interleaves the shard changelogs
into precisely the serial executor's output, ``ptime`` ties included.

Watermark events are broadcast, so the shards' watermark observations
are replayed into the :class:`~repro.runtime.frontier.WatermarkFrontier`
in (sequence, shard) order; the frontier's published minimum reproduces
the serial root watermark track.
"""

from __future__ import annotations

from ..core.changelog import Change
from ..core.errors import ExecutionError
from ..core.times import Timestamp
from .frontier import WatermarkFrontier

__all__ = [
    "dedup_by_seq",
    "dedup_observations",
    "merge_tagged_changes",
    "merge_tagged_slices",
    "replay_frontier",
]

#: One shard's tagged output: (global event seq, changes it caused).
TaggedSlice = tuple[int, list[Change]]

#: One shard's watermark observation: (global event seq, ptime, value).
WatermarkObservation = tuple[int, Timestamp, Timestamp]


def dedup_by_seq(slices: list[TaggedSlice]) -> tuple[list[TaggedSlice], int]:
    """Collapse re-emitted output slices from restarted shard workers.

    A supervised worker keeps every emission in its log, duplicates
    included — exactly what a worker that crashed *after* shipping
    output but *before* its next checkpoint produces on replay.  Each
    output slice is keyed by the global sequence number of the event
    that caused it, and replay is deterministic, so the first
    occurrence is kept and later occurrences are dropped, returning
    ``(unique slices, changes dropped)``.  A re-emission that does not
    match the original byte for byte means replay diverged — a bug, not
    a duplicate — and raises instead of being silently merged.

    Idempotent: deduping a deduped log drops nothing further (property-
    tested in ``tests/test_faults.py``).
    """
    seen: dict[int, list[Change]] = {}
    unique: list[TaggedSlice] = []
    drops = 0
    for seq, changes in slices:
        prior = seen.get(seq)
        if prior is None:
            seen[seq] = changes
            unique.append((seq, changes))
        else:
            if changes != prior:
                raise ExecutionError(
                    f"replay diverged: event #{seq} re-emitted different "
                    "output after a shard restart"
                )
            drops += len(changes)
    return unique, drops


def dedup_observations(
    observations: list[WatermarkObservation],
) -> list[WatermarkObservation]:
    """Drop re-observed watermark values from replayed input.

    Watermark observations are keyed by global sequence number; replay
    after a restart re-observes the same (ptime, value) pairs, which
    must not be fed to the frontier twice.  Divergent re-observations
    raise, mirroring :func:`dedup_by_seq`.
    """
    seen: dict[int, WatermarkObservation] = {}
    unique: list[WatermarkObservation] = []
    for obs in observations:
        prior = seen.get(obs[0])
        if prior is None:
            seen[obs[0]] = obs
            unique.append(obs)
        elif prior != obs:
            raise ExecutionError(
                f"replay diverged: event #{obs[0]} re-observed a different "
                "watermark after a shard restart"
            )
    return unique


def merge_tagged_slices(
    tagged: list[list[TaggedSlice]],
) -> list[TaggedSlice]:
    """Interleave per-shard output slices by global event sequence.

    Keeps the per-slice structure — the two-phase combine stage feeds
    one slice (one payload batch) at a time, in global order.
    """
    entries: list[TaggedSlice] = []
    claimed: dict[int, int] = {}
    for shard, slices in enumerate(tagged):
        for seq, changes in slices:
            prior = claimed.get(seq)
            if prior is not None:
                raise ExecutionError(
                    f"shards {prior} and {shard} both produced output for "
                    f"event #{seq}; the plan is not cleanly partitioned"
                )
            claimed[seq] = shard
            entries.append((seq, changes))
    entries.sort(key=lambda item: item[0])
    return entries


def merge_tagged_changes(
    tagged: list[list[TaggedSlice]],
) -> list[Change]:
    """Flattened form of :func:`merge_tagged_slices`."""
    return [
        change
        for _, changes in merge_tagged_slices(tagged)
        for change in changes
    ]


def replay_frontier(
    frontier: WatermarkFrontier,
    observations: list[list[WatermarkObservation]],
) -> list[tuple[Timestamp, Timestamp]]:
    """Feed per-shard watermark observations into the frontier.

    Observations are applied in (global sequence, shard index) order —
    the same order the synchronous path produces them — so the merged
    track's (ptime, value) steps are identical either way, and a trace
    callback on the frontier sees the same per-shard ``"frontier"`` /
    merged ``"watermark"`` timeline a synchronous run would produce.
    Returns the ``(ptime, value)`` advances the replay published.
    """
    by_seq: dict[int, list[tuple[int, Timestamp, Timestamp]]] = {}
    for shard, obs in enumerate(observations):
        for seq, ptime, value in obs:
            by_seq.setdefault(seq, []).append((shard, ptime, value))
    published: list[tuple[Timestamp, Timestamp]] = []
    for seq in sorted(by_seq):
        for shard, ptime, value in sorted(by_seq[seq]):
            merged = frontier.observe(shard, ptime, value)
            if merged is not None:
                published.append((ptime, merged))
    return published
