"""The watermark frontier: shard-local watermarks merged on the minimum.

Each shard runs a full copy of the dataflow and so produces its own
root output watermark.  A downstream consumer — ``EMIT AFTER
WATERMARK`` above all (Extensions 5–7) — may only treat an event-time
boundary as complete once *every* shard has passed it, exactly the
hold-back rule multi-input operators apply per input port (Section 5),
lifted to the shard dimension.  :class:`WatermarkFrontier` tracks the
per-shard values and publishes the merged minimum as a
:class:`~repro.core.watermark.WatermarkTrack`, which becomes the
``watermarks`` of the sharded :class:`~repro.exec.executor.RunResult`.
"""

from __future__ import annotations

from ..core.errors import WatermarkError
from ..core.times import MIN_TIMESTAMP, Timestamp
from ..core.watermark import WatermarkTrack

__all__ = ["WatermarkFrontier"]


class WatermarkFrontier:
    """Per-shard watermark tracking with a published minimum."""

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise WatermarkError("frontier needs at least one shard")
        self._values: list[Timestamp] = [MIN_TIMESTAMP] * shard_count
        self._merged = WatermarkTrack()

    @property
    def shard_count(self) -> int:
        return len(self._values)

    @property
    def merged(self) -> WatermarkTrack:
        """The published (minimum) watermark as a step function."""
        return self._merged

    @property
    def current(self) -> Timestamp:
        """The current merged minimum across all shards."""
        return min(self._values)

    def shard_value(self, shard: int) -> Timestamp:
        return self._values[shard]

    def observe(self, shard: int, ptime: Timestamp, value: Timestamp) -> Timestamp | None:
        """Record shard ``shard``'s watermark reaching ``value`` at ``ptime``.

        Returns the newly published merged watermark if the minimum
        advanced, else ``None``.  Per-shard watermarks must be
        monotonic, mirroring the serial watermark contract.
        """
        if value < self._values[shard]:
            raise WatermarkError(
                f"shard {shard} watermark regressed from "
                f"{self._values[shard]} to {value}"
            )
        self._values[shard] = value
        merged = min(self._values)
        if merged > self._merged.current:
            self._merged.advance(ptime, merged)
            return merged
        return None

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "values": list(self._values),
            "merged_pairs": self._merged.as_pairs(),
        }

    def restore(self, snapshot: dict) -> None:
        if len(snapshot["values"]) != len(self._values):
            raise WatermarkError(
                "frontier snapshot has a different shard count"
            )
        self._values = list(snapshot["values"])
        self._merged = WatermarkTrack()
        for ptime, value in snapshot["merged_pairs"]:
            self._merged.advance(ptime, value)

    def __repr__(self) -> str:
        return f"WatermarkFrontier({self._values}, merged={self._merged.current})"
