"""The watermark frontier: shard-local watermarks merged on the minimum.

Each shard runs a full copy of the dataflow and so produces its own
root output watermark.  A downstream consumer — ``EMIT AFTER
WATERMARK`` above all (Extensions 5–7) — may only treat an event-time
boundary as complete once *every* shard has passed it, exactly the
hold-back rule multi-input operators apply per input port (Section 5),
lifted to the shard dimension.  :class:`WatermarkFrontier` tracks the
per-shard values and publishes the merged minimum as a
:class:`~repro.core.watermark.WatermarkTrack`, which becomes the
``watermarks`` of the sharded :class:`~repro.exec.executor.RunResult`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.errors import WatermarkError
from ..core.times import MIN_TIMESTAMP, Timestamp
from ..core.watermark import WatermarkTrack
from ..obs.trace import TraceEvent

__all__ = ["WatermarkFrontier"]


class WatermarkFrontier:
    """Per-shard watermark tracking with a published minimum."""

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise WatermarkError("frontier needs at least one shard")
        self._values: list[Timestamp] = [MIN_TIMESTAMP] * shard_count
        self._merged = WatermarkTrack()
        #: restored shard watermarks clamped instead of letting the
        #: merged minimum regress below a value already reported in a
        #: ``frontier`` trace event (mid-run shard restarts).
        self.wm_regressions = 0
        #: optional trace hook: receives a ``"frontier"`` event per
        #: per-shard advance and a ``"watermark"`` event whenever the
        #: published minimum moves — the propagation timeline that makes
        #: straggler shards visible (a fast shard's frontier events run
        #: far ahead of the merged watermark events).
        self.trace: Optional[Callable[[TraceEvent], None]] = None

    @property
    def shard_count(self) -> int:
        return len(self._values)

    @property
    def merged(self) -> WatermarkTrack:
        """The published (minimum) watermark as a step function."""
        return self._merged

    @property
    def current(self) -> Timestamp:
        """The current merged minimum across all shards."""
        return min(self._values)

    def shard_value(self, shard: int) -> Timestamp:
        return self._values[shard]

    def observe(self, shard: int, ptime: Timestamp, value: Timestamp) -> Timestamp | None:
        """Record shard ``shard``'s watermark reaching ``value`` at ``ptime``.

        Returns the newly published merged watermark if the minimum
        advanced, else ``None``.  Per-shard watermarks must be
        monotonic, mirroring the serial watermark contract.
        """
        if value < self._values[shard]:
            raise WatermarkError(
                f"shard {shard} watermark regressed from "
                f"{self._values[shard]} to {value}"
            )
        advanced = value > self._values[shard]
        self._values[shard] = value
        if advanced and self.trace is not None:
            self.trace(
                TraceEvent(
                    kind="frontier",
                    ptime=ptime,
                    value=value,
                    operator="frontier",
                    shard=shard,
                )
            )
        merged = min(self._values)
        if merged > self._merged.current:
            self._merged.advance(ptime, merged)
            if self.trace is not None:
                self.trace(
                    TraceEvent(
                        kind="watermark",
                        ptime=ptime,
                        value=merged,
                        operator="frontier",
                    )
                )
            return merged
        return None

    def restore_shard(self, shard: int, value: Timestamp) -> Timestamp:
        """Re-seat one shard's watermark after a mid-run restart.

        A shard restored from a checkpoint resumes with the watermark
        it had *then*, which is at or behind everything this frontier
        has already observed — and possibly reported in ``frontier``
        trace events — for that shard.  Regressing the tracked value
        would let the merged minimum move backwards, un-asserting a
        completeness boundary downstream consumers may have acted on.
        Instead the restored value is clamped to the already-observed
        one, ``wm_regressions`` is counted, and the clamped value is
        returned (the shard's replay then re-advances it monotonically).
        """
        prior = self._values[shard]
        if value < prior:
            self.wm_regressions += 1
            value = prior
        self._values[shard] = value
        return value

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "values": list(self._values),
            "merged_pairs": self._merged.as_pairs(),
            "wm_regressions": self.wm_regressions,
        }

    def restore(self, snapshot: dict) -> None:
        """Restore a snapshot, refusing corrupt ones before mutating self.

        A snapshot is corrupt when its shard count differs, a shard
        value is not a timestamp, the merged pairs are not a monotone
        step function, or the published minimum runs ahead of some
        shard — a merged watermark above a shard's own value would
        assert completeness the shard never reached.
        """
        values = snapshot.get("values")
        if not isinstance(values, list) or len(values) != len(self._values):
            raise WatermarkError(
                f"frontier snapshot has {len(values) if isinstance(values, list) else 'no'} "
                f"shard values, this frontier has {len(self._values)} shards"
            )
        for shard, value in enumerate(values):
            if not isinstance(value, int) or isinstance(value, bool):
                raise WatermarkError(
                    f"frontier snapshot shard {shard} watermark is not a "
                    f"timestamp: {value!r}"
                )
        # Rebuild the merged track off to the side first: advance()
        # validates monotonicity, so a corrupt pair list raises before
        # any of this frontier's state changes.
        merged = WatermarkTrack()
        for ptime, value in snapshot["merged_pairs"]:
            merged.advance(ptime, value)
        for shard, value in enumerate(values):
            if value < merged.current:
                raise WatermarkError(
                    f"frontier snapshot is corrupt: merged watermark "
                    f"{merged.current} runs ahead of shard {shard} at {value}"
                )
        # A snapshot older than this frontier's live state (a mid-run
        # restart restoring an earlier checkpoint) must not regress what
        # was already observed — and possibly already reported in
        # ``frontier``/``watermark`` trace events.  Clamp each shard to
        # its observed floor and keep the further-along published track,
        # counting every clamp as a wm_regression instead of erroring.
        self.wm_regressions = snapshot.get("wm_regressions", 0)
        clamped = []
        for shard, value in enumerate(values):
            floor = self._values[shard]
            if value < floor:
                self.wm_regressions += 1
                value = floor
            clamped.append(value)
        if merged.current < self._merged.current:
            self.wm_regressions += 1
            merged = self._merged
        self._values = clamped
        self._merged = merged

    def __repr__(self) -> str:
        return f"WatermarkFrontier({self._values}, merged={self._merged.current})"
