"""Event routing: splitting the global event sequence across shards.

The router consumes the same deterministically merged event sequence
the serial executor replays (``merge_source_events``) and assigns every
event a global sequence number:

* a **row event** goes to exactly one shard — the hash of its partition
  key (per the :class:`~repro.plan.partition.PartitionSpec`); rows of
  sources the query never scans are broadcast, which is a no-op in
  every shard but keeps per-shard bookkeeping aligned with the serial
  executor;
* a **watermark event** is broadcast to every shard, so each shard's
  view of completeness is exactly the serial one — the precondition for
  identical late-row dropping and state expiry on all shards.

The sequence numbers are what the merge stage later sorts by, so shard
outputs reassemble into the serial changelog order.
"""

from __future__ import annotations

from ..core.tvr import RowEvent, StreamEvent
from ..plan.partition import PartitionSpec

__all__ = ["ShardEvent", "partition_events"]

#: One routed event: (global sequence number, event, source name).
ShardEvent = tuple[int, StreamEvent, str]


def partition_events(
    events: list[tuple[StreamEvent, str]],
    spec: PartitionSpec,
    shards: int,
) -> list[list[ShardEvent]]:
    """Split a merged event sequence into per-shard subsequences.

    Each shard's subsequence preserves global (processing-time) order,
    so feeding it through ``Dataflow.process`` never violates the
    executor's monotonicity contract.
    """
    tasks: list[list[ShardEvent]] = [[] for _ in range(shards)]
    for seq, (event, source) in enumerate(events):
        if isinstance(event, RowEvent):
            owner = spec.shard_of(source, event.change.values, shards)
            if owner is None:
                for task in tasks:
                    task.append((seq, event, source))
            else:
                tasks[owner].append((seq, event, source))
        else:
            for task in tasks:
                task.append((seq, event, source))
    return tasks
