"""Worker-pool backends for driving shard dataflows.

``run_shards`` executes one zero-argument worker per shard and returns
their results in shard order.  Three backends:

* ``"sync"`` — run the workers one after another in the calling thread.
  The reference semantics; useful for debugging and tiny inputs.
* ``"threads"`` — one thread per shard (the default).  Each worker
  touches only its own shard's ``Dataflow``, so no locking is needed;
  pure-Python operator work still serialises on the GIL, but any
  I/O-bound or C-accelerated stages overlap.
* ``"processes"`` — fork one child per shard.  The child inherits its
  shard by fork (no pickling on the way in) and ships its result — and
  a ``Dataflow.checkpoint()`` of the shard's final state — back through
  a pipe, so the parent can restore the shard and keep going
  incrementally.  Falls back to ``"threads"`` where ``fork`` is
  unavailable.

Whatever the backend, the merge stage reassembles the shard outputs by
global event sequence, so results are identical across all three.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, TypeVar

from ..core.errors import ExecutionError

__all__ = ["run_shards"]

T = TypeVar("T")

BACKENDS = ("sync", "threads", "processes")


def run_shards(workers: list[Callable[[], T]], backend: str = "threads") -> list[T]:
    """Run one worker per shard; return results in shard order.

    The first worker failure (by shard index) is re-raised in the
    caller after all workers have stopped.
    """
    if backend == "sync":
        return [worker() for worker in workers]
    if backend == "threads":
        return _run_threads(workers)
    if backend == "processes":
        if not _fork_available():
            return _run_threads(workers)
        return _run_processes(workers)
    raise ExecutionError(
        f"unknown runtime backend {backend!r}; expected one of {BACKENDS}"
    )


def _run_threads(workers: list[Callable[[], T]]) -> list[T]:
    results: list[Optional[T]] = [None] * len(workers)
    errors: list[Optional[BaseException]] = [None] * len(workers)

    def entry(index: int, worker: Callable[[], T]) -> None:
        try:
            results[index] = worker()
        except BaseException as exc:  # noqa: BLE001 — re-raised in caller
            errors[index] = exc

    threads = [
        threading.Thread(target=entry, args=(i, worker), name=f"repro-shard-{i}")
        for i, worker in enumerate(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for exc in errors:
        if exc is not None:
            raise exc
    return results  # type: ignore[return-value]


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _process_entry(worker: Callable[[], T], conn) -> None:
    try:
        payload = ("ok", worker())
    except BaseException as exc:  # noqa: BLE001 — re-raised in parent
        payload = ("err", exc)
    try:
        conn.send(payload)
    except Exception:
        # The result (or the exception itself) didn't pickle; report that
        # instead of leaving the parent hanging on a closed pipe.
        conn.send(("err", ExecutionError(f"shard result not picklable: {payload[1]!r}")))
    finally:
        conn.close()


def _run_processes(workers: list[Callable[[], T]]) -> list[T]:
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    pipes = []
    procs = []
    for i, worker in enumerate(workers):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_process_entry,
            args=(worker, child_conn),
            name=f"repro-shard-{i}",
        )
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)

    results: list[Optional[T]] = [None] * len(workers)
    errors: list[Optional[BaseException]] = [None] * len(workers)
    for i, (conn, proc) in enumerate(zip(pipes, procs)):
        try:
            status, value = conn.recv()
        except EOFError:
            status, value = "err", ExecutionError(
                f"shard {i} worker process died without reporting a result"
            )
        finally:
            conn.close()
        proc.join()
        if status == "ok":
            results[i] = value
        else:
            errors[i] = value
    for exc in errors:
        if exc is not None:
            raise exc
    return results  # type: ignore[return-value]
