"""The merge-stage half of two-phase sharded aggregation.

:class:`CombineStage` hosts the
:class:`~repro.exec.operators.aggregate.CombineAggregateOperator` plus
the original plan's stateless finishing operators (the Project/Filter
chain that sat above the aggregate), rebuilt from the logical nodes the
physical split preserved.  The sharded runtime feeds it partial
payloads in global sequence order — one :meth:`feed` per merged output
slice — and watermark advances from the merged frontier, so the stage
sees exactly the event interleaving the serial executor would and its
output splices into the merged changelog byte-identically.

The stage deliberately mirrors the executor's per-edge behavior:
outputs are compacted between operators when ``coalesce_updates`` is
on (with ``changes_coalesced`` charged to the producing operator, as
``Dataflow._push_changes`` does), per-operator state peaks are noted
after every feed, and root emissions are recorded into a
:class:`~repro.obs.telemetry.RunTelemetry` against the original plan
root's completion columns.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.changelog import Change, compact_intra_instant
from ..core.errors import ExecutionError
from ..core.times import Timestamp
from ..obs.telemetry import RunTelemetry

__all__ = ["CombineStage"]


class CombineStage:
    """Combine operator + finishing chain, driven by the merge loop."""

    def __init__(
        self,
        split,
        allowed_lateness: int = 0,
        coalesce_updates: bool = False,
    ):
        # Imported here: repro.exec imports repro.plan, and this module
        # is imported by repro.runtime.sharded which repro.exec's
        # executor does not depend on — but keeping the import local
        # avoids ever creating a cycle through repro.exec.compile.
        from ..exec.compile import build_operator
        from ..exec.operators.aggregate import CombineAggregateOperator

        self._split = split
        self._coalesce = coalesce_updates
        agg = split.aggregate
        combine = CombineAggregateOperator(
            agg.schema,
            agg.group_indices,
            agg.aggs,
            agg.event_time_key_positions,
            agg.input.bounded,
            allowed_lateness=allowed_lateness,
        )
        # ``split.finish`` is root-first; build upward from the combine
        # so each finishing operator consumes the one below it.
        ops: list = [combine]
        prev = combine
        for node in reversed(split.finish):
            op = build_operator(node, [prev], allowed_lateness)
            ops.append(op)
            prev = op
        self._combine = combine
        self._ops = ops  # feed order: combine first, root last
        self._root = prev
        root_node = split.finish[0] if split.finish else agg
        self._completion = root_node.completion_indices
        self.telemetry = RunTelemetry()

    # -- driving ---------------------------------------------------------------

    def feed(
        self, changes: Sequence[Change], root_watermark: Timestamp
    ) -> list[Change]:
        """Run one merged slice of partial payloads through the stage.

        Returns the final changes to splice into the merged output at
        the slice's position.
        """
        current: list[Change] = list(changes)
        for op in self._ops:
            if not current:
                break
            produced = op.process_batch(0, current)
            if self._coalesce and len(produced) > 1:
                produced, dropped = compact_intra_instant(produced)
                if dropped:
                    op.counters.record_coalesced(dropped)
            current = produced
        for op in self._ops:
            op.counters.note_state(op.state_size())
        if current:
            self.telemetry.record_emit_run(
                current, self._completion, root_watermark
            )
        return current

    def advance(self, value: Timestamp, ptime: Timestamp) -> None:
        """Propagate a merged-frontier advance through the stage.

        Watermark advances free combine state but never produce output
        — two-phase splitting is only planned for row-driven
        (partitionable) plans, so anything else is a bug.
        """
        wm: Optional[Timestamp] = value
        for op in self._ops:
            changes, wm = op.process_watermark(0, wm, ptime)
            if changes:
                raise ExecutionError(
                    "combine stage produced output on a watermark advance; "
                    "the plan should not have been split"
                )
            if wm is None:
                break
        for op in self._ops:
            op.counters.note_state(op.state_size())

    # -- introspection ---------------------------------------------------------

    @property
    def combine_operator(self):
        return self._combine

    @property
    def operator_count(self) -> int:
        return len(self._ops)

    def state_rows(self) -> int:
        return sum(op.state_size() for op in self._ops)

    def changes_coalesced(self) -> int:
        return sum(op.counters.changes_coalesced for op in self._ops)

    def peak_state_rows(self) -> int:
        return sum(op.counters.peak_state_rows for op in self._ops)

    def expired_rows(self) -> int:
        return sum(op.expired_rows for op in self._ops)

    def metrics_entries(self) -> list[dict]:
        """Per-operator metric blocks, plan-root first (depth 0 at the
        top of the finishing chain, the combine deepest)."""
        entries = []
        for depth, op in enumerate(reversed(self._ops)):
            entry = op.metrics()
            entry["depth"] = depth
            entry["leaf"] = False
            entry["shared_by"] = 1
            entries.append(entry)
        return entries

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "ops": [op.state_snapshot() for op in self._ops],
            "telemetry": self.telemetry,
        }

    def restore(self, payload: dict) -> None:
        states = payload["ops"]
        if len(states) != len(self._ops):
            raise ExecutionError(
                f"combine stage shape changed: checkpoint has "
                f"{len(states)} operators, stage has {len(self._ops)}"
            )
        for op, state in zip(self._ops, states):
            op.state_restore(state)
        restored = payload.get("telemetry")
        if restored is not None:
            self.telemetry = restored
