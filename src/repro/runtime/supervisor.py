"""Supervised shard execution: detect failures, restore, replay, dedup.

PR 1's sharded runtime proved the paper's one-query/one-relation
guarantee holds under parallelism; this layer makes it hold under
*failure*.  Each shard worker runs under a :class:`ShardSupervisor`
that:

1. drives the shard's routed event subsequence exactly as the plain
   batch driver did (same invariant checks, same tagged output slices);
2. takes a shard checkpoint every ``RetryPolicy.checkpoint_interval``
   events, recording the input offset it covers (with micro-batching
   enabled, checkpoints land on the next batch boundary, so a restart
   always replays whole batches and re-forms them identically);
3. on any failure — an operator exception, an injected crash, or a
   simulated hang from the fault harness (:mod:`repro.runtime.faults`)
   — restores a fresh shard dataflow from the last checkpoint (or from
   scratch when none exists), waits out an exponential backoff, and
   replays the input from the recorded offset;
4. keeps *every* emission in its output log, duplicates included, the
   way a real worker that crashed after shipping output would; the
   merge stage deduplicates by global sequence number
   (:func:`repro.runtime.merge.dedup_by_seq`), which is why the merged
   changelog stays byte-identical to a fault-free serial run.

The retry budget is bounded (``max_restarts``); when it is exhausted
the original failure propagates unchanged, so a deterministic bug
fails the run instead of looping forever.

Recovery is never silent: each restart appends a ``"recovery"``
:class:`~repro.obs.trace.TraceEvent` and increments the
:class:`~repro.obs.metrics.RecoveryStats` counters surfaced on the
run's :class:`~repro.obs.metrics.MetricsReport`, the Prometheus
exposition, and the shell's ``\\watch`` dashboard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.errors import ExecutionError
from ..core.times import MIN_TIMESTAMP, Timestamp
from ..core.tvr import RowEvent, WatermarkEvent
from ..exec.executor import Dataflow
from ..obs.metrics import RecoveryStats
from ..obs.trace import TraceEvent
from .faults import FaultInjector, InjectedFault
from .merge import TaggedSlice, WatermarkObservation
from .routing import ShardEvent

__all__ = ["RetryPolicy", "ShardSupervisor", "SupervisedOutcome"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a shard supervisor restarts failed workers.

    * ``max_restarts`` — restarts allowed per shard before the failure
      propagates (the bounded retry budget).
    * ``backoff_base_ms`` / ``backoff_factor`` / ``backoff_cap_ms`` —
      exponential backoff between attempts: restart *n* waits
      ``base * factor**(n-1)`` ms, capped.  The default base of 0
      disables sleeping entirely, which keeps tests and CI
      deterministic; production configs set a real base.
    * ``checkpoint_interval`` — events between shard checkpoints.  0
      (the default) takes no mid-run checkpoints, so recovery replays
      the shard's input from the beginning; a positive interval bounds
      the replay tail at the cost of periodic state snapshots.
    """

    max_restarts: int = 2
    backoff_base_ms: int = 0
    backoff_factor: float = 2.0
    backoff_cap_ms: int = 5_000
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ExecutionError("max_restarts must be >= 0")
        if self.backoff_base_ms < 0:
            raise ExecutionError("backoff_base_ms must be >= 0")
        if self.backoff_factor < 1.0:
            raise ExecutionError("backoff_factor must be >= 1.0")
        if self.backoff_cap_ms < 0:
            raise ExecutionError("backoff_cap_ms must be >= 0")
        if self.checkpoint_interval < 0:
            raise ExecutionError("checkpoint_interval must be >= 0")

    def delay_ms(self, restart_number: int) -> float:
        """Backoff before restart ``restart_number`` (1-based), in ms."""
        if self.backoff_base_ms == 0:
            return 0.0
        delay = self.backoff_base_ms * self.backoff_factor ** (restart_number - 1)
        return min(delay, float(self.backoff_cap_ms))


@dataclass
class SupervisedOutcome:
    """One shard's supervised run: output log, recovery ledger, final state.

    ``slices``/``observations`` may contain duplicate sequence numbers
    when restarts replayed input — downstream dedup collapses them.
    ``state`` carries the final shard checkpoint for process workers
    (``None`` for thread workers, whose dataflow survives in place).
    All fields pickle, so the outcome crosses the fork pipe intact.
    """

    slices: list[TaggedSlice] = field(default_factory=list)
    observations: list[WatermarkObservation] = field(default_factory=list)
    stats: RecoveryStats = field(default_factory=RecoveryStats)
    events: list[TraceEvent] = field(default_factory=list)
    state: Optional[bytes] = None


class ShardSupervisor:
    """Drives one shard's subsequence with restart-from-checkpoint recovery."""

    def __init__(
        self,
        shard: int,
        dataflow: Dataflow,
        make_dataflow: Callable[[], Dataflow],
        tasks: list[ShardEvent],
        until: Optional[Timestamp],
        policy: RetryPolicy,
        injector: FaultInjector,
        transfer_state: bool = False,
    ):
        self._shard = shard
        self._flow = dataflow
        self._make = make_dataflow
        self._tasks = tasks
        self._until = until
        self._policy = policy
        self._injector = injector
        self._transfer_state = transfer_state
        #: the shard dataflow after the run — the original instance when
        #: no restart happened, a restored replacement otherwise.
        self.final_flow: Dataflow = dataflow

    def run(self) -> SupervisedOutcome:
        """Supervise the shard to completion (or until the budget dies)."""
        outcome = SupervisedOutcome()
        policy = self._policy
        attempt = 0
        offset = 0  # next task index to process
        checkpoint: Optional[bytes] = None
        checkpoint_offset = 0
        high_water = -1  # highest task index ever processed
        last_ptime: Timestamp = MIN_TIMESTAMP
        flow = self._flow
        while True:
            try:
                checkpoints_this_attempt = 0
                tasks = self._tasks
                n = len(tasks)
                batch_size = flow.batch_size
                i = offset
                while i < n:
                    seq, event, source = tasks[i]
                    # Micro-batch: extend over consecutive row events
                    # that share this event's instant and source AND
                    # carry globally consecutive sequence numbers — a
                    # seq gap means another shard owns the missing
                    # event, whose output must interleave between ours,
                    # so batching across it would break the seq-ordered
                    # merge.  Checkpoints are only considered at batch
                    # boundaries, so a restart replays whole batches and
                    # re-produces identical (seq, slice) tags for the
                    # dedup stage.
                    j = i + 1
                    if (
                        batch_size > 1
                        and isinstance(event, RowEvent)
                        and flow.batchable_source(source)
                    ):
                        ptime = event.ptime
                        prev_seq = seq
                        while j < n and j - i < batch_size:
                            next_seq, next_event, next_source = tasks[j]
                            if (
                                next_seq != prev_seq + 1
                                or next_source != source
                                or not isinstance(next_event, RowEvent)
                                or next_event.ptime != ptime
                            ):
                                break
                            prev_seq = next_seq
                            j += 1
                    for idx in range(i, j):
                        self._injector.before_event(self._shard, attempt, idx)
                    before = flow.output_size
                    if j - i == 1:
                        flow.process(event, source)
                    else:
                        flow.process_batch(
                            [task[1] for task in tasks[i:j]], source
                        )
                    produced = flow.output_slice(before)
                    if produced:
                        if isinstance(event, WatermarkEvent):
                            raise ExecutionError(
                                "watermark advance produced output in a "
                                "shard; the partition analyzer admitted a "
                                "watermark-triggered operator it should not "
                                "have"
                            )
                        outcome.slices.append((seq, produced))
                    if isinstance(event, WatermarkEvent):
                        outcome.observations.append(
                            (seq, event.ptime, flow.root_watermark)
                        )
                    if isinstance(event, RowEvent):
                        for idx in range(i, j):
                            if idx <= high_water:
                                outcome.stats.rows_replayed += 1
                    high_water = max(high_water, j - 1)
                    last_ptime = max(last_ptime, event.ptime)
                    i = j
                    interval = policy.checkpoint_interval
                    if (
                        interval
                        and i < n
                        and (i - checkpoint_offset) >= interval
                    ):
                        checkpoint = flow.checkpoint()
                        checkpoint_offset = i
                        checkpoints_this_attempt += 1
                        self._injector.after_checkpoint(
                            self._shard, attempt, checkpoints_this_attempt
                        )
                before = flow.output_size
                flow.finish(self._until)
                if flow.output_slice(before):
                    raise ExecutionError(
                        "timer drain produced output in a shard; the "
                        "partition analyzer admitted a timer-driven operator "
                        "it should not have"
                    )
                self.final_flow = flow
                if self._transfer_state:
                    outcome.state = flow.checkpoint()
                return outcome
            except Exception as exc:  # noqa: BLE001 — classified and re-raised
                attempt += 1
                if attempt > policy.max_restarts:
                    raise
                outcome.stats.shard_restarts += 1
                outcome.events.append(
                    TraceEvent(
                        kind="recovery",
                        ptime=last_ptime,
                        count=attempt,
                        operator=f"supervisor:{_failure_label(exc)}",
                        shard=self._shard,
                    )
                )
                delay = policy.delay_ms(attempt)
                if delay > 0:
                    time.sleep(delay / 1000.0)
                flow = self._make()
                if checkpoint is not None:
                    flow.restore(checkpoint)
                offset = checkpoint_offset


def _failure_label(exc: BaseException) -> str:
    """A short, stable description of what the supervisor caught."""
    if isinstance(exc, InjectedFault):
        return exc.label
    return type(exc).__name__
