"""Sharded parallel execution runtime.

Sits between a planned query and the serial :class:`~repro.exec.executor.Dataflow`:
the partition analyzer (:mod:`repro.plan.partition`) proves a query
key-partitionable, :class:`ShardedDataflow` runs N independent shard
dataflows with hash routing and broadcast watermarks, a
:class:`WatermarkFrontier` publishes the minimum watermark across
shards, and the deterministic merge stage reassembles the shard
changelogs into the exact serial output.

Batch runs are fault tolerant: every shard worker executes under a
:class:`ShardSupervisor` (:mod:`repro.runtime.supervisor`) that
restarts it from its last checkpoint on failure, replays its input,
and relies on sequence-number dedup to keep the merged output exact;
:mod:`repro.runtime.faults` is the deterministic fault-injection
harness (:class:`FaultPlan`) that makes every recovery path testable.

Guarantee: for any partitionable query, the sharded result — values,
``ptime``, ``undo``, ``ver``, and ordering — is identical to the serial
engine's, with or without worker failures along the way (see
``docs/RUNTIME.md`` for the argument).
"""

from .backends import run_shards
from .combine import CombineStage
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
)
from .frontier import WatermarkFrontier
from .sharded import ShardedDataflow
from .supervisor import RetryPolicy, ShardSupervisor, SupervisedOutcome

__all__ = [
    "ShardedDataflow",
    "CombineStage",
    "WatermarkFrontier",
    "run_shards",
    "RetryPolicy",
    "ShardSupervisor",
    "SupervisedOutcome",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FAULT_KINDS",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
]
