"""Sharded parallel execution runtime.

Sits between a planned query and the serial :class:`~repro.exec.executor.Dataflow`:
the partition analyzer (:mod:`repro.plan.partition`) proves a query
key-partitionable, :class:`ShardedDataflow` runs N independent shard
dataflows with hash routing and broadcast watermarks, a
:class:`WatermarkFrontier` publishes the minimum watermark across
shards, and the deterministic merge stage reassembles the shard
changelogs into the exact serial output.

Guarantee: for any partitionable query, the sharded result — values,
``ptime``, ``undo``, ``ver``, and ordering — is identical to the serial
engine's (see ``docs/RUNTIME.md`` for the argument).
"""

from .backends import run_shards
from .frontier import WatermarkFrontier
from .sharded import ShardedDataflow

__all__ = ["ShardedDataflow", "WatermarkFrontier", "run_shards"]
