"""Deterministic fault injection for the supervised sharded runtime.

Recovery code that is only exercised by real crashes is recovery code
that is never exercised.  A :class:`FaultPlan` describes *exactly*
which shard fails, *when* (at which event offset or checkpoint), *how*
(crash, hang, poison row), and *how many attempts* the fault survives —
with no wall-clock reads and no global randomness, so every recovery
path is replayable in CI byte for byte.

Fault kinds (the strings accepted by :meth:`FaultPlan.parse` and the
``--fault-plan`` CLI flag):

* ``crash-before-batch`` — the shard worker raises :class:`InjectedCrash`
  immediately before processing the ``at``-th event of its routed
  subsequence (a simulated process crash between batches).
* ``crash-after-checkpoint`` — the worker crashes immediately after
  taking its ``at``-th checkpoint of the attempt, so recovery replays
  from the checkpoint that was *just* written.
* ``slow-shard`` — the worker raises :class:`InjectedHang` at the
  ``at``-th event, standing in for the supervisor's hang-via-timeout
  detection without any real sleeping (see docs/RUNTIME.md for why a
  wall-clock timeout cannot be part of a deterministic harness).
* ``poison-row`` — the ``at``-th event is poisoned: processing it
  raises until the fault's ``times`` budget is spent, then heals (a
  transient bad row, the classic at-least-once dedup test).

Every fault fires on attempts ``0 .. times-1`` of its shard and heals
afterwards; the injection decision is a pure function of
``(spec, shard, attempt, position)``, which is what makes the harness
deterministic under restart and across the threads/processes backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.errors import ExecutionError

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
]

FAULT_KINDS = (
    "crash-before-batch",
    "crash-after-checkpoint",
    "slow-shard",
    "poison-row",
)


class InjectedFault(Exception):
    """Base class for all injected failures (never raised by real bugs)."""

    #: the fault kind that raised this, for supervisor trace provenance.
    label = "injected-fault"


class InjectedCrash(InjectedFault):
    """A simulated worker crash (``crash-*`` and ``poison-row`` kinds)."""

    label = "crash"


class InjectedHang(InjectedFault):
    """A simulated hang, as the supervisor's timeout detector would report it."""

    label = "hang"


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: ``kind`` fires on ``shard`` at ``at``.

    ``at`` is an event offset into the shard's routed subsequence for
    the event-positioned kinds, or a checkpoint ordinal (1-based,
    within one attempt) for ``crash-after-checkpoint``.  The fault
    fires on the shard's first ``times`` attempts and heals afterwards.
    """

    kind: str
    shard: int = 0
    at: int = 1
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ExecutionError("fault shard index must be >= 0")
        if self.at < 0:
            raise ExecutionError("fault position must be >= 0")
        if self.times < 1:
            raise ExecutionError("fault must fire at least once")

    def fires(self, shard: int, attempt: int) -> bool:
        """Whether this spec is armed for ``shard`` on ``attempt``."""
        return shard == self.shard and attempt < self.times

    def spec_string(self) -> str:
        return f"{self.kind}:shard={self.shard},at={self.at},times={self.times}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec` — the whole run's fault script."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def empty(self) -> bool:
        return not self.faults

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a spec string: ``kind[:key=value,...][;kind...]``.

        Examples::

            FaultPlan.parse("crash-after-checkpoint")
            FaultPlan.parse("crash-before-batch:shard=1,at=5")
            FaultPlan.parse("poison-row:at=3,times=2;slow-shard:shard=2")
        """
        specs = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, params = part.partition(":")
            fields: dict[str, int] = {}
            if params:
                for item in params.split(","):
                    key, eq, value = item.partition("=")
                    key = key.strip()
                    if not eq or key not in ("shard", "at", "times"):
                        raise ExecutionError(
                            f"bad fault parameter {item!r} in {part!r}; "
                            "expected shard=N, at=N, or times=N"
                        )
                    try:
                        fields[key] = int(value)
                    except ValueError as exc:
                        raise ExecutionError(
                            f"fault parameter {item!r} is not an integer"
                        ) from exc
            specs.append(FaultSpec(kind.strip(), **fields))
        if not specs:
            raise ExecutionError(f"fault plan {text!r} names no faults")
        return cls(tuple(specs))

    @classmethod
    def seeded(
        cls,
        seed: int,
        shards: int,
        events_per_shard: int,
        kinds: Iterable[str] = FAULT_KINDS,
        count: int = 1,
    ) -> "FaultPlan":
        """A reproducible random plan from a private ``random.Random(seed)``.

        Never touches the global random state or the clock: the same
        ``(seed, shards, events_per_shard)`` always yields the same plan.
        """
        rng = random.Random(seed)
        kinds = tuple(kinds)
        specs = tuple(
            FaultSpec(
                kind=rng.choice(kinds),
                shard=rng.randrange(shards),
                at=rng.randrange(1, max(2, events_per_shard)),
            )
            for _ in range(count)
        )
        return cls(specs)

    def spec_string(self) -> str:
        """The plan as a parseable spec string (round-trips via parse)."""
        return ";".join(spec.spec_string() for spec in self.faults)


class FaultInjector:
    """Raises the plan's faults at their scripted positions.

    Stateless by design: whether a fault fires depends only on the
    spec and the ``(shard, attempt, position)`` the supervisor passes
    in, so injection behaves identically inside forked process workers
    (which cannot share mutable parent state) and thread workers.
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self._plan = plan if plan is not None else FaultPlan()

    @property
    def armed(self) -> bool:
        return not self._plan.empty

    def before_event(self, shard: int, attempt: int, offset: int) -> None:
        """Hook: about to process the shard's ``offset``-th event."""
        for spec in self._plan.faults:
            if spec.at != offset or not spec.fires(shard, attempt):
                continue
            if spec.kind == "crash-before-batch":
                raise InjectedCrash(
                    f"injected crash on shard {shard} before event {offset} "
                    f"(attempt {attempt})"
                )
            if spec.kind == "poison-row":
                raise InjectedCrash(
                    f"injected poison row on shard {shard} at event {offset} "
                    f"(attempt {attempt})"
                )
            if spec.kind == "slow-shard":
                raise InjectedHang(
                    f"injected hang on shard {shard} at event {offset} "
                    f"(attempt {attempt}); supervisor treats this as a timeout"
                )

    def after_checkpoint(self, shard: int, attempt: int, ordinal: int) -> None:
        """Hook: the shard just wrote its ``ordinal``-th checkpoint (1-based)."""
        for spec in self._plan.faults:
            if (
                spec.kind == "crash-after-checkpoint"
                and spec.at == ordinal
                and spec.fires(shard, attempt)
            ):
                raise InjectedCrash(
                    f"injected crash on shard {shard} after checkpoint "
                    f"{ordinal} (attempt {attempt})"
                )
