"""The public engine facade.

:class:`StreamEngine` owns a catalog of time-varying relations (streams
and tables), a function registry, and the plan/execute pipeline::

    engine = StreamEngine(config=ExecutionConfig(parallelism=4))
    engine.register_stream("Bid", bid_tvr)
    query = engine.query("SELECT ... EMIT STREAM AFTER WATERMARK")
    query.table(at="8:21")      # Listing 12 style point-in-time view
    query.stream(until="8:21")  # Listing 13 style changelog view

Both renderings come from one execution of the query as a time-varying
relation — the paper's stream/table duality made literal.

All execution knobs travel in one frozen :class:`~repro.config.ExecutionConfig`,
accepted at three layers with *call-site > engine > defaults* precedence::

    engine = StreamEngine(config=ExecutionConfig(parallelism=4))
    query.run()                                      # engine's config
    query.run(config=ExecutionConfig(backend="sync"))  # override one field

The pre-config keyword arguments (``parallelism=``, ``backend=``,
``telemetry=``, ``allowed_lateness=``) still work but emit a
``DeprecationWarning`` once per process; see ``docs/API.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from .config import (
    ExecutionConfig,
    warn_coalesce_emit_stream,
    warn_deprecated_api,
    warn_deprecated_kwarg,
)
from .core.emit import EmitSpec
from .core.errors import ValidationError
from .core.relation import Relation
from .core.schema import Schema, SqlType
from .core.times import MAX_TIMESTAMP, Timestamp, t
from .core.tvr import TimeVaryingRelation
from .exec.executor import Dataflow, RunResult
from .explain import render_explain
from .exec.materialize import (
    DeltaChange,
    StreamChange,
    delta_view,
    stream_schema,
    stream_view,
    table_view,
)
from .obs.export import TelemetryExporter, make_exporter
from .plan.logical import SortNode
from .plan.optimizer import optimize
from .plan.partition import PartitionDecision, analyze_partitioning
from .plan.physical import PhysicalDecision, plan_physical
from .plan.planner import Catalog, Planner, QueryPlan
from .runtime.sharded import ShardedDataflow
from .sql.functions import FunctionRegistry, default_registry

__all__ = ["StreamEngine", "PreparedQuery"]


def _as_ptime(value: Timestamp | str) -> Timestamp:
    """Accept either a millisecond timestamp or an ``"8:21"`` string."""
    if isinstance(value, str):
        return t(value)
    return value


def _coerce_config(config: Optional[ExecutionConfig]) -> ExecutionConfig:
    if config is None:
        return ExecutionConfig()
    if not isinstance(config, ExecutionConfig):
        raise ValidationError(
            f"config must be an ExecutionConfig, got {config!r}"
        )
    return config


class StreamEngine:
    """A streaming SQL engine over time-varying relations.

    ``config`` — an :class:`~repro.config.ExecutionConfig` — sets this
    engine's execution defaults; any field left unset falls back to the
    library defaults (serial, ``threads`` backend, telemetry recorded
    but not exported, zero lateness, default retry policy, no faults).

    ``config.parallelism`` selects the execution runtime: ``1`` (the
    default) runs every query on the serial
    :class:`~repro.exec.executor.Dataflow`; ``N > 1`` runs
    key-partitionable queries on ``N`` hash-routed shards
    (:mod:`repro.runtime`) under supervision — failed shard workers
    restart from their last checkpoint — with output guaranteed
    identical to the serial engine, falling back to serial for queries
    the partition analyzer rejects.

    ``config.telemetry`` plugs an exporter into every query execution:
    a :class:`~repro.obs.export.TelemetryExporter` instance, or a spec
    string — ``"jsonl:PATH"`` (trace-event log, one JSON object per
    line) or ``"prometheus:PATH"`` (text exposition written after each
    run).  Latency telemetry is always *recorded* (it rides on the
    metrics report); the exporter only controls where it goes.

    The ``parallelism=`` / ``backend=`` / ``telemetry=`` keywords are
    deprecated spellings of the corresponding config fields.
    """

    def __init__(
        self,
        config: Optional[ExecutionConfig] = None,
        *,
        parallelism: Optional[int] = None,
        backend: Optional[str] = None,
        telemetry=None,
    ) -> None:
        config = _coerce_config(config)
        overrides: dict[str, Any] = {}
        if parallelism is not None:
            warn_deprecated_kwarg("parallelism", f"parallelism={parallelism!r}")
            overrides["parallelism"] = parallelism
        if backend is not None:
            warn_deprecated_kwarg("backend", f"backend={backend!r}")
            overrides["backend"] = backend
        if telemetry is not None:
            warn_deprecated_kwarg("telemetry", f"telemetry={telemetry!r}")
            overrides["telemetry"] = telemetry
        if overrides:
            config = ExecutionConfig(**overrides).merged_over(config)
        #: the engine-layer config, fully resolved (no unset fields).
        self.config = config.resolved()
        try:
            self.telemetry: Optional[TelemetryExporter] = make_exporter(
                self.config.telemetry
            )
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc
        self._catalog = Catalog()
        self._registry = default_registry()
        self._sources: dict[str, TimeVaryingRelation] = {}

    @property
    def parallelism(self) -> int:
        """Shard count from the engine config (read-only)."""
        return self.config.parallelism

    @property
    def backend(self) -> str:
        """Shard worker pool from the engine config (read-only)."""
        return self.config.backend

    # -- catalog ------------------------------------------------------------

    def register_stream(self, name: str, tvr: TimeVaryingRelation) -> None:
        """Register an unbounded stream (a TVR with watermark events)."""
        self._catalog.register(name, tvr.schema, bounded=False)
        self._sources[name.lower()] = tvr

    def register_table(
        self,
        name: str,
        schema_or_tvr: Schema | TimeVaryingRelation,
        rows: Iterable[Sequence[Any]] = (),
    ) -> None:
        """Register a bounded table.

        Accepts either a schema plus rows, or an existing TVR — e.g. a
        recorded stream to be reprocessed "as a table", which the paper
        highlights as a key property of the unified model.
        """
        if isinstance(schema_or_tvr, TimeVaryingRelation):
            tvr = schema_or_tvr
        else:
            tvr = TimeVaryingRelation.from_table(schema_or_tvr, rows)
        self._catalog.register(name, tvr.schema, bounded=True)
        self._sources[name.lower()] = tvr

    def register_view(self, name: str, sql: str) -> None:
        """Register a named view: a query expanded wherever referenced.

        Views map a query pointwise over their input TVRs (Section 6.1),
        so a view over a stream is itself a stream-ready relation:
        query it with any EMIT mode, join it, window it.
        """
        from .sql.parser import parse

        self._catalog.register_view(name, parse(sql))

    def source(self, name: str) -> TimeVaryingRelation:
        """The registered TVR behind ``name``."""
        return self._sources[name.lower()]

    # -- functions ------------------------------------------------------------

    def register_function(
        self,
        name: str,
        impl: Callable[..., Any],
        return_type: SqlType | Callable[[list[SqlType]], SqlType],
        min_args: int,
        max_args: int | None = None,
    ) -> None:
        """Register a user-defined scalar function (e.g. NEXMark's DOLTOEUR)."""
        self._registry.register_scalar(name, impl, return_type, min_args, max_args)

    @property
    def functions(self) -> FunctionRegistry:
        return self._registry

    # -- queries ---------------------------------------------------------------

    def query(
        self,
        sql: str,
        config: Optional[ExecutionConfig] = None,
        *,
        allowed_lateness: Optional[int] = None,
    ) -> "PreparedQuery":
        """Parse, validate, plan, and optimize a SQL query.

        ``config`` pins execution settings for this query, overriding
        the engine's config field by field (and overridable again per
        ``run(config=...)`` call).  ``config.allowed_lateness``
        (milliseconds) keeps per-group state alive that long past the
        watermark so late rows update results instead of being dropped —
        the configurable lateness Extension 2 notes real deployments
        need.  The bare ``allowed_lateness=`` keyword is deprecated.
        """
        if allowed_lateness is not None:
            warn_deprecated_kwarg(
                "allowed_lateness", f"allowed_lateness={allowed_lateness!r}"
            )
            shim = ExecutionConfig(allowed_lateness=allowed_lateness)
            config = shim.merged_over(config) if config is not None else shim
        planner = Planner(self._catalog, self._registry)
        plan = optimize(planner.plan_sql(sql))
        return PreparedQuery(self, plan, config=config)

    def explain(
        self, sql: str, mode: str = "logical", verbose: bool = False
    ) -> str:
        """Render one :data:`~repro.explain.EXPLAIN_MODES` view of ``sql``.

        ``logical`` (the default) is the optimized plan plus the runtime
        note; ``physical`` adds the one-phase/two-phase aggregation
        shape; ``costs`` adds the cost-model inputs behind that choice;
        ``analyze`` executes the query over the registered sources and
        annotates the plan with each operator's runtime counters (rows
        in/out, retractions, late drops, expiries, state and peak
        state, watermark lag) — the Section 5 feedback loop, one
        command away.
        """
        return self.query(sql).explain(mode=mode, verbose=verbose)

    def explain_analyze(self, sql: str, verbose: bool = False) -> str:
        """Deprecated spelling of ``explain(sql, mode="analyze")``."""
        warn_deprecated_api("explain_analyze", 'explain(mode="analyze")')
        return self.query(sql).explain(mode="analyze", verbose=verbose)


class PreparedQuery:
    """A planned query, ready to materialize as a table or a stream.

    Holds an optional query-layer :class:`~repro.config.ExecutionConfig`
    whose set fields override the engine's; ``run(config=...)`` overrides
    both for a single execution (call-site > query > engine > defaults).
    """

    def __init__(
        self,
        engine: StreamEngine,
        plan: QueryPlan,
        config: Optional[ExecutionConfig] = None,
        *,
        allowed_lateness: Optional[int] = None,
    ):
        if allowed_lateness is not None:
            warn_deprecated_kwarg(
                "allowed_lateness", f"allowed_lateness={allowed_lateness!r}"
            )
            shim = ExecutionConfig(allowed_lateness=allowed_lateness)
            config = shim.merged_over(config) if config is not None else shim
        self._engine = engine
        self.plan = plan
        self.config = config if config is not None else ExecutionConfig()
        self._cached: Optional[RunResult] = None
        self._cached_fingerprint: Optional[tuple] = None
        self._decision: Optional[PartitionDecision] = None
        #: metrics of the most recent execution — the counter feedback
        #: the physical planner's ``auto`` mode consumes.
        self._last_metrics = None

    # -- metadata ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.plan.schema

    @property
    def emit(self) -> EmitSpec:
        return self.plan.emit

    @property
    def allowed_lateness(self) -> int:
        """The effective lateness window (query over engine over default)."""
        return self._effective().allowed_lateness

    def _effective(
        self, config: Optional[ExecutionConfig] = None
    ) -> ExecutionConfig:
        """Resolve the full precedence chain into a concrete config."""
        layered = self.config
        if config is not None:
            layered = _coerce_config(config).merged_over(layered)
        return layered.merged_over(self._engine.config).resolved()

    def explain(self, mode: str = "logical", verbose: bool = False) -> str:
        """One rendered explain ``mode`` (see :data:`repro.explain.EXPLAIN_MODES`)."""
        return render_explain(self, mode=mode, verbose=verbose)

    def explain_analyze(self, verbose: bool = False) -> str:
        """Deprecated spelling of ``explain(mode="analyze")``."""
        warn_deprecated_api("explain_analyze", 'explain(mode="analyze")')
        return self.explain(mode="analyze", verbose=verbose)

    def metrics(self):
        """The per-operator :class:`~repro.obs.metrics.MetricsReport`."""
        return self.run().metrics

    def partition_decision(self) -> PartitionDecision:
        """The partition analyzer's verdict for this plan (cached)."""
        if self._decision is None:
            self._decision = analyze_partitioning(self.plan)
        return self._decision

    def physical_decision(
        self, config: Optional[ExecutionConfig] = None
    ) -> PhysicalDecision:
        """The physical planner's one-phase/two-phase verdict.

        Consumes the ``two_phase`` knob, the partition decision, and —
        in ``auto`` mode — the previous execution's operator counters
        as cardinality feedback (none before the first run, so auto
        optimistically splits until the observed fan-in says otherwise).
        """
        return plan_physical(
            self.plan,
            self.partition_decision(),
            self._effective(config),
            feedback=self._last_metrics,
        )

    def stats(self) -> dict:
        """Execution statistics for the current sources.

        Bundles the run's counters with the per-operator state report —
        Section 5's call to relate physical state back to the query.
        """
        result = self.run()
        dataflow = self.dataflow()
        dataflow.run()
        report = dataflow.state_report()
        return {
            "changes": len(result.changes),
            "late_dropped": result.late_dropped,
            "expired_rows": result.expired_rows,
            "peak_state_rows": result.peak_state_rows,
            "watermark_steps": len(result.watermarks.as_pairs()),
            "state_report": report,
            "metrics": result.metrics,
        }

    # -- execution ------------------------------------------------------------

    def run(self, config: Optional[ExecutionConfig] = None) -> RunResult:
        """Execute the dataflow over all currently registered events.

        ``config`` overrides the query- and engine-level configs for
        this call (field-wise, highest precedence).  The run is cached
        per effective config and transparently refreshed when any
        source has grown since the last execution.
        """
        effective = self._effective(config)
        fingerprint = (effective,) + tuple(
            (name, tvr.last_ptime, len(tvr.events()))
            for name, tvr in sorted(self._engine._sources.items())
        )
        if self._cached is None or fingerprint != self._cached_fingerprint:
            self._cached = self._execute(effective)
            self._cached_fingerprint = fingerprint
        return self._cached

    def _resolve_exporter(
        self, effective: ExecutionConfig
    ) -> Optional[TelemetryExporter]:
        """The exporter for one run, reusing the engine's when unchanged.

        Reuse matters for file-backed exporters: a ``jsonl:`` exporter
        truncates its file on construction, so re-resolving the same
        spec per run would wipe the log each time.
        """
        if effective.telemetry == self._engine.config.telemetry:
            return self._engine.telemetry
        try:
            return make_exporter(effective.telemetry)
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc

    def _maybe_warn_coalesce(self, effective: ExecutionConfig) -> None:
        """Flag compaction under an explicit EMIT STREAM materialization.

        Compaction keeps every per-instant snapshot but thins the
        changelog, so a query that renders the changelog itself (EMIT
        STREAM's ``undo``/``ver`` columns) sees different rows; warn
        once per process (see docs/API.md).
        """
        if effective.coalesce_updates and self.plan.emit.stream:
            warn_coalesce_emit_stream()

    def _execute(self, effective: ExecutionConfig) -> RunResult:
        exporter = self._resolve_exporter(effective)
        self._maybe_warn_coalesce(effective)
        flow = None
        if effective.parallelism > 1:
            decision = self.partition_decision()
            if decision.partitionable:
                physical = plan_physical(
                    self.plan, decision, effective, feedback=self._last_metrics
                )
                flow = ShardedDataflow(
                    self.plan,
                    self._engine._sources,
                    decision.spec,
                    effective.parallelism,
                    effective.allowed_lateness,
                    backend=effective.backend,
                    retry=effective.retry,
                    fault_plan=effective.fault_plan,
                    batch_size=effective.batch_size,
                    coalesce_updates=effective.coalesce_updates,
                    two_phase=physical.use_two_phase,
                    columnar=effective.columnar,
                )
        if flow is None:
            flow = Dataflow(
                self.plan,
                self._engine._sources,
                effective.allowed_lateness,
                batch_size=effective.batch_size,
                coalesce_updates=effective.coalesce_updates,
                columnar=effective.columnar,
            )
        if exporter is not None:
            flow.trace = exporter.on_event
        result = flow.run()
        if exporter is not None:
            exporter.export(result)
        self._last_metrics = result.metrics
        return result

    def dataflow(self, config: Optional[ExecutionConfig] = None) -> Dataflow:
        """A fresh, un-run serial dataflow (for incremental feeding / benchmarks).

        ``config`` overrides the query/engine configs for this dataflow
        (``allowed_lateness``, ``batch_size``, ``coalesce_updates``).
        """
        effective = self._effective(config)
        self._maybe_warn_coalesce(effective)
        return Dataflow(
            self.plan,
            self._engine._sources,
            effective.allowed_lateness,
            batch_size=effective.batch_size,
            coalesce_updates=effective.coalesce_updates,
            columnar=effective.columnar,
        )

    def sharded_dataflow(
        self,
        config: Optional[ExecutionConfig] = None,
        *,
        shards: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> ShardedDataflow:
        """A fresh, un-run sharded dataflow for this query.

        ``config`` overrides the query/engine configs for this dataflow
        (``parallelism``, ``backend``, ``retry``, ``fault_plan``,
        ``allowed_lateness``); the bare ``shards=`` / ``backend=``
        keywords are deprecated spellings of the first two.  Raises
        :class:`~repro.core.errors.ValidationError` when the partition
        analyzer rejects the plan — check :meth:`partition_decision`
        first to branch gracefully.
        """
        overrides: dict[str, Any] = {}
        if shards is not None:
            warn_deprecated_kwarg("shards", f"parallelism={shards!r}")
            overrides["parallelism"] = shards
        if backend is not None:
            warn_deprecated_kwarg("backend", f"backend={backend!r}")
            overrides["backend"] = backend
        if overrides:
            shim = ExecutionConfig(**overrides)
            config = shim.merged_over(config) if config is not None else shim
        effective = self._effective(config)
        decision = self.partition_decision()
        if not decision.partitionable:
            raise ValidationError(
                f"query is not key-partitionable: {decision.reason}"
            )
        self._maybe_warn_coalesce(effective)
        physical = plan_physical(
            self.plan, decision, effective, feedback=self._last_metrics
        )
        return ShardedDataflow(
            self.plan,
            self._engine._sources,
            decision.spec,
            effective.parallelism,
            effective.allowed_lateness,
            backend=effective.backend,
            retry=effective.retry,
            fault_plan=effective.fault_plan,
            batch_size=effective.batch_size,
            coalesce_updates=effective.coalesce_updates,
            two_phase=physical.use_two_phase,
            columnar=effective.columnar,
        )

    # -- renderings --------------------------------------------------------------

    def table(self, at: Timestamp | str = MAX_TIMESTAMP) -> Relation:
        """The *snapshot* encoding of the result TVR at processing time ``at``.

        A time-varying relation can be rendered as the sequence of its
        point-in-time snapshots or as the changelog connecting them
        (Section 3); ``table()`` is the snapshot side: one classic
        relation holding exactly the rows the result contains at ``at``,
        with no change metadata.
        """
        result = self.run()
        sort_keys, limit = self._sort_spec()
        return table_view(
            result,
            self.plan.emit,
            self.plan.root.completion_indices,
            self.plan.root.emit_key_indices,
            at=_as_ptime(at),
            sort_keys=sort_keys,
            limit=limit,
        )

    def stream(self, until: Timestamp | str = MAX_TIMESTAMP) -> list[StreamChange]:
        """The *changelog* encoding of the result TVR, up to ptime ``until``.

        The other side of the duality: the totally-ordered sequence of
        changes that carries the result from empty to its ``until``
        snapshot.  Each :class:`~repro.exec.materialize.StreamChange`
        is a row plus the change metadata of Listing 13 — ``ptime``
        (when it took effect), ``undo`` (retraction flag), and ``ver``
        (version within its group) — so replaying the changelog
        reconstructs every intermediate snapshot ``table(at=...)`` would
        show.
        """
        if isinstance(self.plan.root, SortNode):
            raise ValidationError(
                "ORDER BY / LIMIT define a table ordering and cannot be "
                "rendered as a stream; drop them or use .table()"
            )
        result = self.run()
        return stream_view(
            result,
            self.plan.emit,
            self.plan.root.completion_indices,
            self.plan.root.emit_key_indices,
            until=_as_ptime(until),
        )

    def stream_deltas(
        self, until: Timestamp | str = MAX_TIMESTAMP
    ) -> list[DeltaChange]:
        """The changelog as per-aggregate numeric deltas (Section 6.5.1).

        A compressed changelog encoding, available for grouped queries
        whose non-key outputs are numeric: each update carries only the
        difference against the group's previous version instead of a
        retract/insert pair.
        """
        result = self.run()
        return delta_view(
            result,
            self.plan.emit,
            self.plan.root.completion_indices,
            self.plan.root.emit_key_indices,
            until=_as_ptime(until),
        )

    def stream_table(self, until: Timestamp | str = MAX_TIMESTAMP) -> Relation:
        """The changelog encoding rendered as a printable relation.

        Same changes as :meth:`stream`, materialized Listing 9 style:
        one row per change with ``ptime``/``undo``/``ver`` as ordinary
        columns, so the stream rendering can itself be inspected as a
        table — the duality applied to its own output.
        """
        changes = self.stream(until)
        return Relation(
            stream_schema(self.schema), [c.as_tuple() for c in changes]
        )

    # -- helpers ----------------------------------------------------------------

    def _sort_spec(self) -> tuple[Sequence[tuple[int, bool]], Optional[int]]:
        root = self.plan.root
        if isinstance(root, SortNode):
            return root.keys, root.limit
        return (), None
