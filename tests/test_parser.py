"""Unit tests for the SQL parser, including the paper's extensions."""

import pytest

from repro.core.errors import ParseError
from repro.core.times import minutes
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


class TestSelectBasics:
    def test_minimal(self):
        stmt = parse("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 1
        assert stmt.from_items == (ast.TableRef("t"),)

    def test_star_and_qualified_star(self):
        stmt = parse("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.qualifier == "t"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_items[0].alias == "u"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT ALL a FROM t").distinct

    def test_where_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 10

    def test_trailing_semicolon(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t garbage extra")


class TestJoins:
    def test_comma_join(self):
        stmt = parse("SELECT 1 FROM a, b, c")
        assert len(stmt.from_items) == 3

    def test_inner_join_on(self):
        stmt = parse("SELECT 1 FROM a JOIN b ON a.x = b.y")
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinClause)
        assert join.kind == "INNER"
        assert join.condition is not None

    def test_left_outer(self):
        join = parse("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.y").from_items[0]
        assert join.kind == "LEFT"

    def test_cross_join_no_on(self):
        join = parse("SELECT 1 FROM a CROSS JOIN b").from_items[0]
        assert join.kind == "CROSS"
        assert join.condition is None

    def test_join_chain(self):
        join = parse(
            "SELECT 1 FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        ).from_items[0]
        assert isinstance(join.left, ast.JoinClause)


class TestSubqueriesAndTvfs:
    def test_derived_table(self):
        stmt = parse("SELECT 1 FROM (SELECT a FROM t) sub")
        sub = stmt.from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "sub"

    def test_tumble_named_args(self):
        stmt = parse(
            "SELECT * FROM Tumble(data => TABLE(Bid), "
            "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) TB"
        )
        tvf = stmt.from_items[0]
        assert isinstance(tvf, ast.TvfCall)
        assert tvf.name == "Tumble"
        assert tvf.alias == "TB"
        named = {a.name: a.value for a in tvf.args}
        assert isinstance(named["data"], ast.TableArg)
        assert named["data"].name == "Bid"
        assert isinstance(named["timecol"], ast.Descriptor)
        assert named["dur"].millis == minutes(10)

    def test_tvf_positional_args(self):
        tvf = parse(
            "SELECT * FROM Hop(TABLE(Bid), DESCRIPTOR(bidtime), "
            "INTERVAL '10' MINUTES, INTERVAL '5' MINUTES)"
        ).from_items[0]
        assert isinstance(tvf, ast.TvfCall)
        assert len(tvf.args) == 4

    def test_emit_only_parses_at_statement_level(self):
        stmt = parse("SELECT 1 FROM (SELECT a FROM t EMIT STREAM) sub")
        # the inner select may syntactically carry EMIT; the planner
        # rejects it, the parser just records it
        assert stmt.from_items[0].query.emit is not None


class TestEmit:
    def test_stream(self):
        emit = parse("SELECT a FROM t EMIT STREAM").emit
        assert emit.stream and not emit.after_watermark and emit.delay is None

    def test_after_watermark(self):
        emit = parse("SELECT a FROM t EMIT AFTER WATERMARK").emit
        assert not emit.stream and emit.after_watermark

    def test_stream_after_watermark(self):
        emit = parse("SELECT a FROM t EMIT STREAM AFTER WATERMARK").emit
        assert emit.stream and emit.after_watermark

    def test_after_delay(self):
        emit = parse(
            "SELECT a FROM t EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES"
        ).emit
        assert emit.delay == minutes(6)

    def test_combined(self):
        emit = parse(
            "SELECT a FROM t EMIT AFTER DELAY INTERVAL '1' MINUTE AND AFTER WATERMARK"
        ).emit
        assert emit.delay == minutes(1) and emit.after_watermark

    def test_bare_emit_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t EMIT")

    def test_after_requires_known_clause(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t EMIT AFTER SUNSET")


class TestUnion:
    def test_union_all(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert isinstance(stmt, ast.Union_)
        assert stmt.all

    def test_union_distinct(self):
        assert not parse("SELECT a FROM t UNION SELECT b FROM u").all

    def test_emit_hoisted_to_union(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT b FROM u EMIT STREAM")
        assert stmt.emit is not None
        assert stmt.right.emit is None


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_chain(self):
        expr = parse_expression("a AND b OR c")
        assert expr.op == "OR"

    def test_not(self):
        expr = parse_expression("NOT a = b")
        assert isinstance(expr, ast.UnaryOp)

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)
        expr = parse_expression("x NOT BETWEEN 1 AND 5")
        assert expr.negated

    def test_in_list(self):
        expr = parse_expression("s IN ('OR', 'ID', 'CA')")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_is_null(self):
        assert isinstance(parse_expression("a IS NULL"), ast.IsNull)
        assert parse_expression("a IS NOT NULL").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'A%'")
        assert expr.op == "LIKE"

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case)
        assert expr.else_ is not None

    def test_case_simple(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'one' END")
        # simple CASE desugars into equality conditions
        assert expr.whens[0][0].op == "="

    def test_cast(self):
        expr = parse_expression("CAST(a AS INT)")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "INT"

    def test_function_calls(self):
        expr = parse_expression("COUNT(*)")
        assert expr.is_star
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct
        expr = parse_expression("SUBSTRING(s, 1, 3)")
        assert len(expr.args) == 3

    def test_qualified_ref(self):
        expr = parse_expression("Bid.price")
        assert expr.parts == ("Bid", "price")

    def test_literals(self):
        assert parse_expression("42").value == 42
        assert parse_expression("3.5").value == 3.5
        assert parse_expression("'hi'").value == "hi"
        assert parse_expression("TRUE").value is True
        assert parse_expression("NULL").value is None

    def test_unary_minus_folds_literal(self):
        # -5 parses as UnaryOp over literal; translation folds it
        expr = parse_expression("-5")
        assert isinstance(expr, ast.UnaryOp)

    def test_mod_keyword_and_percent(self):
        assert parse_expression("a MOD 2").op == "%"
        assert parse_expression("a % 2").op == "%"

    def test_interval_units(self):
        assert parse_expression("INTERVAL '1' HOUR").millis == 3_600_000
        assert parse_expression("INTERVAL '10' MINUTES").millis == 600_000
        assert parse_expression("INTERVAL '2' SECONDS").millis == 2_000
        assert parse_expression("INTERVAL '0.5' MINUTE").millis == 30_000

    def test_interval_bad_unit(self):
        with pytest.raises(ParseError):
            parse_expression("INTERVAL '1' FORTNIGHT")

    def test_error_position_rendered(self):
        with pytest.raises(ParseError) as err:
            parse("SELECT a FROM")
        message = str(err.value)
        assert "line 1" in message and "^" in message
