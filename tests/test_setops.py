"""Tests for INTERSECT / EXCEPT set operations."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation


def values_query(rows):
    inner = ", ".join(f"({v})" for v in rows)
    return f"SELECT v.col0 FROM (VALUES {inner}) v"


def run(sql):
    return sorted(r[0] for r in StreamEngine().query(sql).table().tuples)


class TestBagSemantics:
    def test_intersect_all_is_bag_min(self):
        sql = values_query([1, 2, 2, 2]) + " INTERSECT ALL " + values_query([2, 2, 3])
        assert run(sql) == [2, 2]

    def test_intersect_distinct(self):
        sql = values_query([1, 2, 2]) + " INTERSECT " + values_query([2, 2, 3])
        assert run(sql) == [2]

    def test_except_all_is_bag_difference(self):
        sql = values_query([1, 2, 2, 2]) + " EXCEPT ALL " + values_query([2])
        assert run(sql) == [1, 2, 2]

    def test_except_distinct(self):
        sql = values_query([1, 2, 2]) + " EXCEPT " + values_query([3])
        assert run(sql) == [1, 2]

    def test_chained_left_associative(self):
        sql = (
            values_query([1, 2, 3])
            + " INTERSECT "
            + values_query([2, 3])
            + " EXCEPT "
            + values_query([3])
        )
        assert run(sql) == [2]

    def test_arity_mismatch_rejected(self):
        from repro.core.errors import PlanError, ValidationError

        with pytest.raises((PlanError, ValidationError), match="arity"):
            StreamEngine().query(
                "SELECT v.col0, v.col1 FROM (VALUES (1, 2)) v "
                "INTERSECT SELECT w.col0 FROM (VALUES (1)) w"
            )


class TestStreaming:
    def test_rows_flip_as_sides_change(self):
        schema = Schema([int_col("v"), timestamp_col("ts", event_time=True)])
        a = TimeVaryingRelation(schema)
        b = TimeVaryingRelation(schema)
        a.insert(10, (1, t("9:00")))
        b.insert(20, (1, t("9:00")))   # intersection gains the row
        b.retract(30, (1, t("9:00")))  # ...and loses it again
        engine = StreamEngine()
        engine.register_stream("A", a)
        engine.register_stream("B", b)
        out = engine.query(
            "SELECT v, ts FROM A INTERSECT SELECT v, ts FROM B EMIT STREAM"
        ).stream()
        assert [(c.undo, c.ptime) for c in out] == [(False, 20), (True, 30)]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 4), max_size=12),
    st.lists(st.integers(0, 4), max_size=12),
    st.sampled_from(["INTERSECT", "EXCEPT"]),
    st.booleans(),
)
def test_matches_bag_model(left, right, op, use_all):
    if not left or not right:
        return
    sql = (
        values_query(left)
        + f" {op}{' ALL' if use_all else ''} "
        + values_query(right)
    )
    got = Counter(run(sql))
    lcount, rcount = Counter(left), Counter(right)
    expected: Counter = Counter()
    for value in set(left) | set(right):
        l, r = lcount.get(value, 0), rcount.get(value, 0)
        n = min(l, r) if op == "INTERSECT" else max(l - r, 0)
        if not use_all:
            n = 1 if n > 0 else 0
        if n:
            expected[value] = n
    assert got == Counter(expected.elements())
