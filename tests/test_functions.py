"""Tests for the function registry: scalars and aggregates."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine
from repro.core.errors import ValidationError
from repro.core.schema import Schema, SqlType, float_col, int_col, string_col
from repro.sql.functions import default_registry

REG = default_registry()


def run_scalar(name, *args):
    fn = REG.scalar(name)
    return fn.impl(*args)


class TestScalars:
    def test_string_functions(self):
        assert run_scalar("UPPER", "abc") == "ABC"
        assert run_scalar("LOWER", "ABC") == "abc"
        assert run_scalar("LENGTH", "hello") == 5
        assert run_scalar("SUBSTRING", "hello", 2, 3) == "ell"
        assert run_scalar("SUBSTRING", "hello", 3) == "llo"
        assert run_scalar("CONCAT", "a", 1, "b") == "a1b"

    def test_numeric_functions(self):
        assert run_scalar("ABS", -4) == 4
        assert run_scalar("FLOOR", 2.7) == 2
        assert run_scalar("CEIL", 2.1) == 3
        assert run_scalar("ROUND", 2.456, 1) == 2.5
        assert run_scalar("POWER", 2, 10) == 1024
        assert run_scalar("SQRT", 9) == 3
        assert run_scalar("GREATEST", 1, 9, 4) == 9
        assert run_scalar("LEAST", 1, 9, 4) == 1

    def test_null_handling_functions(self):
        assert run_scalar("COALESCE", None, None, 7) == 7
        assert run_scalar("COALESCE", None) is None
        assert run_scalar("NULLIF", 3, 3) is None
        assert run_scalar("NULLIF", 3, 4) == 3

    def test_arity_checking(self):
        with pytest.raises(ValidationError, match="arguments"):
            REG.scalar("ABS").check_arity(2)

    def test_unknown_function(self):
        with pytest.raises(ValidationError, match="unknown function"):
            REG.scalar("FROBNICATE")

    def test_registry_copy_is_independent(self):
        clone = REG.copy()
        clone.register_scalar("X", lambda: 1, SqlType.INT, 0)
        assert clone.has_scalar("X")
        assert not REG.has_scalar("X")


class TestVarianceAggregates:
    def _run(self, name, values):
        agg = REG.aggregate(name)
        acc = agg.create()
        for v in values:
            agg.add(acc, v)
        return agg.result(acc)

    def test_var_pop(self):
        assert self._run("VAR_POP", [2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(4.0)

    def test_stddev_pop(self):
        assert self._run("STDDEV_POP", [2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_var_samp(self):
        assert self._run("VAR_SAMP", [1, 2, 3]) == pytest.approx(1.0)

    def test_samp_needs_two_values(self):
        assert self._run("VAR_SAMP", [5]) is None
        assert self._run("VAR_POP", [5]) == pytest.approx(0.0)
        assert self._run("VAR_POP", []) is None

    def test_nulls_ignored(self):
        assert self._run("STDDEV_POP", [None, 2, None, 4]) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), min_size=2, max_size=30),
        st.data(),
    )
    def test_retraction_matches_recompute(self, values, data):
        agg = REG.aggregate("VAR_POP")
        acc = agg.create()
        for v in values:
            agg.add(acc, v)
        survivors = list(values)
        to_remove = data.draw(
            st.lists(
                st.sampled_from(values), max_size=len(values) - 1, unique=False
            )
        )
        for v in to_remove:
            if v in survivors:
                survivors.remove(v)
                agg.retract(acc, v)
        result = agg.result(acc)
        if len(survivors) == 0:
            assert result is None
        else:
            mean = sum(survivors) / len(survivors)
            expected = sum((x - mean) ** 2 for x in survivors) / len(survivors)
            assert result == pytest.approx(expected, abs=1e-6)

    def test_through_sql(self):
        engine = StreamEngine()
        engine.register_table(
            "T",
            Schema([string_col("k"), int_col("v")]),
            [("a", 2), ("a", 4), ("a", 6), ("b", 5)],
        )
        rel = engine.query(
            "SELECT k, STDDEV_POP(v) s, VAR_SAMP(v) vs FROM T GROUP BY k"
        ).table().sorted(["k"])
        a_row, b_row = rel.tuples
        assert a_row[1] == pytest.approx(math.sqrt(8 / 3))
        assert a_row[2] == pytest.approx(4.0)
        assert b_row[1] == pytest.approx(0.0)
        assert b_row[2] is None

    def test_requires_numeric(self):
        engine = StreamEngine()
        engine.register_table(
            "T", Schema([string_col("s")]), [("x",)]
        )
        with pytest.raises(ValidationError, match="numeric"):
            engine.query("SELECT VAR_POP(s) FROM T")
