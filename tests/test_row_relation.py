"""Unit tests for Row, Relation, and EmitSpec rendering."""

import pytest

from repro.core.emit import EmitSpec
from repro.core.relation import Relation
from repro.core.row import Row, format_value
from repro.core.schema import Schema, SqlType, int_col, string_col, timestamp_col
from repro.core.times import minutes, t

SCHEMA = Schema(
    [timestamp_col("ts"), int_col("price"), string_col("item")]
)


class TestRow:
    def test_access_by_name_index_attribute(self):
        row = Row(SCHEMA, (t("8:07"), 2, "A"))
        assert row["price"] == 2
        assert row[1] == 2
        assert row.price == 2
        assert row["PRICE"] == 2  # case-insensitive

    def test_arity_checked(self):
        with pytest.raises(ValueError, match="3 columns"):
            Row(SCHEMA, (1, 2))

    def test_equality_with_tuple_and_row(self):
        row = Row(SCHEMA, (1, 2, "x"))
        assert row == (1, 2, "x")
        assert row == Row(SCHEMA, (1, 2, "x"))
        assert row != (1, 2, "y")
        assert hash(row) == hash((1, 2, "x"))

    def test_iteration_and_dict(self):
        row = Row(SCHEMA, (1, 2, "x"))
        assert list(row) == [1, 2, "x"]
        assert len(row) == 3
        assert row.as_dict() == {"ts": 1, "price": 2, "item": "x"}

    def test_missing_attribute(self):
        row = Row(SCHEMA, (1, 2, "x"))
        with pytest.raises(AttributeError):
            row.nope

    def test_repr_formats_timestamps(self):
        row = Row(SCHEMA, (t("8:07"), 2, "A"))
        assert "8:07" in repr(row)

    def test_format_value(self):
        assert format_value(None, SqlType.INT) == "NULL"
        assert format_value(t("8:07"), SqlType.TIMESTAMP) == "8:07"
        assert format_value(True, SqlType.BOOL) == "TRUE"
        assert format_value(3, SqlType.INT) == "3"


class TestRelation:
    def test_bag_equality_ignores_order(self):
        a = Relation(SCHEMA, [(1, 2, "x"), (3, 4, "y")])
        b = Relation(SCHEMA, [(3, 4, "y"), (1, 2, "x")])
        assert a == b

    def test_bag_equality_counts_duplicates(self):
        a = Relation(SCHEMA, [(1, 2, "x"), (1, 2, "x")])
        b = Relation(SCHEMA, [(1, 2, "x")])
        assert a != b

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Relation(SCHEMA, []))

    def test_sorted_by_columns(self):
        rel = Relation(SCHEMA, [(2, 9, "b"), (1, 5, "a")])
        assert rel.sorted(["ts"]).tuples[0] == (1, 5, "a")
        assert rel.sorted().tuples[0] == (1, 5, "a")

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Relation(SCHEMA, [(1, 2)])

    def test_to_table_renders_all_rows(self):
        rel = Relation(SCHEMA, [(t("8:07"), 2, "A")])
        table = rel.to_table()
        assert "| ts" in table
        assert "8:07" in table and "A" in table

    def test_empty_table_shows_header(self):
        table = Relation(SCHEMA, []).to_table()
        assert "price" in table

    def test_rows_are_bound(self):
        rel = Relation(SCHEMA, [(1, 2, "x")])
        (row,) = rel.rows()
        assert row.item == "x"
        assert bool(rel)
        assert not Relation(SCHEMA, [])


class TestEmitSpec:
    def test_default_is_empty_string(self):
        assert str(EmitSpec.default()) == ""
        assert EmitSpec().is_default

    @pytest.mark.parametrize(
        "spec,text",
        [
            (EmitSpec(stream=True), "EMIT STREAM"),
            (EmitSpec(after_watermark=True), "EMIT AFTER WATERMARK"),
            (
                EmitSpec(stream=True, delay=minutes(6)),
                "EMIT STREAM AFTER DELAY 6m",
            ),
            (
                EmitSpec(delay=minutes(1), after_watermark=True),
                "EMIT AFTER DELAY 1m AND AFTER WATERMARK",
            ),
        ],
    )
    def test_rendering(self, spec, text):
        assert str(spec) == text

    def test_has_materialization_delay(self):
        assert EmitSpec(after_watermark=True).has_materialization_delay
        assert EmitSpec(delay=1).has_materialization_delay
        assert not EmitSpec(stream=True).has_materialization_delay
