"""Integration tests reproducing every listing of the paper exactly.

The input is the Section 4 example dataset (``paper_bid_stream``); each
test asserts the precise rows — including processing times, ``undo``
markers, and ``ver`` revision numbers — shown in Listings 1-14 of
"One SQL to Rule Them All" (SIGMOD 2019).
"""

import pytest

from repro import StreamEngine
from repro.core.times import t
from repro.nexmark.queries import q7_cql, q7_paper


def row(wstart, wend, bidtime, price, item):
    return (t(wstart), t(wend), bidtime and t(bidtime), price, item)


def stream_row(wstart, wend, bidtime, price, item, undo, ptime, ver):
    return (t(wstart), t(wend), t(bidtime), price, item, undo, t(ptime), ver)


class TestListing1CQL:
    def test_cql_q7_emits_once_per_window(self, bid_stream):
        out = q7_cql(bid_stream)
        # CQL's logical clock ticks at window boundaries; Rstream emits
        # each complete window's top bid exactly once.
        assert [(ts, values[1], values[2]) for ts, values in out] == [
            (t("8:10"), 5, "D"),
            (t("8:20"), 6, "F"),
        ]


class TestListing2Query7:
    def test_parses_and_plans(self, engine, q7_sql):
        query = engine.query(q7_sql)
        assert query.schema.column_names() == [
            "wstart", "wend", "bidtime", "price", "item",
        ]


class TestListings3And4TableViews:
    def test_listing3_full_dataset(self, engine, q7_sql):
        rel = engine.query(q7_sql).table(at="8:21").sorted(["wstart"])
        assert rel.tuples == [
            row("8:00", "8:10", "8:09", 5, "D"),
            row("8:10", "8:20", "8:17", 6, "F"),
        ]

    def test_listing4_partial_dataset(self, engine, q7_sql):
        rel = engine.query(q7_sql).table(at="8:13").sorted(["wstart"])
        assert rel.tuples == [
            row("8:00", "8:10", "8:05", 4, "C"),
            row("8:10", "8:20", "8:11", 3, "B"),
        ]


TUMBLE = (
    "SELECT * FROM Tumble("
    "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' MINUTES, offset => INTERVAL '0' MINUTES)"
)

HOP = (
    "SELECT * FROM Hop("
    "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' MINUTES, hopsize => INTERVAL '5' MINUTES)"
)


class TestListing5Tumble:
    def test_window_assignment(self, engine):
        rel = engine.query(TUMBLE).table(at="8:21")
        # the paper prints the rows in arrival order; so do we
        assert rel.tuples == [
            row("8:00", "8:10", "8:07", 2, "A"),
            row("8:10", "8:20", "8:11", 3, "B"),
            row("8:00", "8:10", "8:05", 4, "C"),
            row("8:00", "8:10", "8:09", 5, "D"),
            row("8:10", "8:20", "8:13", 1, "E"),
            row("8:10", "8:20", "8:17", 6, "F"),
        ]


class TestListing6TumbleGroupBy:
    def test_max_per_window(self, engine):
        sql = (
            "SELECT TumbleBid.wend, MAX(TumbleBid.price) maxPrice "
            "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
            "dur => INTERVAL '10' MINUTES) TumbleBid GROUP BY TumbleBid.wend"
        )
        rel = engine.query(sql).table(at="8:21").sorted(["wend"])
        assert rel.tuples == [(t("8:10"), 5), (t("8:20"), 6)]

    def test_grouping_by_wstart_equivalent(self, engine):
        sql = (
            "SELECT TB.wstart, MAX(TB.price) maxPrice "
            "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
            "dur => INTERVAL '10' MINUTES) TB GROUP BY TB.wstart"
        )
        rel = engine.query(sql).table(at="8:21").sorted(["wstart"])
        assert rel.tuples == [(t("8:00"), 5), (t("8:10"), 6)]


class TestListing7Hop:
    def test_each_row_in_two_windows(self, engine):
        rel = engine.query(HOP).table(at="8:21")
        assert len(rel) == 12
        expected = {
            row("8:00", "8:10", "8:07", 2, "A"),
            row("8:05", "8:15", "8:07", 2, "A"),
            row("8:05", "8:15", "8:11", 3, "B"),
            row("8:10", "8:20", "8:11", 3, "B"),
            row("8:00", "8:10", "8:05", 4, "C"),
            row("8:05", "8:15", "8:05", 4, "C"),
            row("8:00", "8:10", "8:09", 5, "D"),
            row("8:05", "8:15", "8:09", 5, "D"),
            row("8:05", "8:15", "8:13", 1, "E"),
            row("8:10", "8:20", "8:13", 1, "E"),
            row("8:10", "8:20", "8:17", 6, "F"),
            row("8:15", "8:25", "8:17", 6, "F"),
        }
        assert set(rel.tuples) == expected


class TestListing8HopGroupBy:
    def test_max_per_hop_window(self, engine):
        sql = (
            "SELECT HB.wend, MAX(HB.price) maxPrice "
            "FROM Hop(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
            "dur => INTERVAL '10' MINUTES, hopsize => INTERVAL '5' MINUTES) HB "
            "GROUP BY HB.wend"
        )
        rel = engine.query(sql).table(at="8:21").sorted(["wend"])
        assert rel.tuples == [
            (t("8:10"), 5),
            (t("8:15"), 5),
            (t("8:20"), 6),
            (t("8:25"), 6),
        ]


class TestListing9EmitStream:
    def test_full_changelog_with_metadata(self, engine, q7_sql):
        out = engine.query(q7_sql + " EMIT STREAM").stream(until="8:21")
        assert [c.as_tuple() for c in out] == [
            stream_row("8:00", "8:10", "8:07", 2, "A", "", "8:08", 0),
            stream_row("8:10", "8:20", "8:11", 3, "B", "", "8:12", 0),
            stream_row("8:00", "8:10", "8:07", 2, "A", "undo", "8:13", 1),
            stream_row("8:00", "8:10", "8:05", 4, "C", "", "8:13", 2),
            stream_row("8:00", "8:10", "8:05", 4, "C", "undo", "8:15", 3),
            stream_row("8:00", "8:10", "8:09", 5, "D", "", "8:15", 4),
            stream_row("8:10", "8:20", "8:11", 3, "B", "undo", "8:18", 1),
            stream_row("8:10", "8:20", "8:17", 6, "F", "", "8:18", 2),
        ]


class TestListings10To12AfterWatermark:
    def test_listing10_incomplete_at_813(self, engine, q7_sql):
        rel = engine.query(q7_sql + " EMIT AFTER WATERMARK").table(at="8:13")
        assert rel.tuples == []

    def test_listing11_first_window_at_816(self, engine, q7_sql):
        rel = engine.query(q7_sql + " EMIT AFTER WATERMARK").table(at="8:16")
        assert rel.tuples == [row("8:00", "8:10", "8:09", 5, "D")]

    def test_listing12_complete_at_821(self, engine, q7_sql):
        rel = (
            engine.query(q7_sql + " EMIT AFTER WATERMARK")
            .table(at="8:21")
            .sorted(["wstart"])
        )
        assert rel.tuples == [
            row("8:00", "8:10", "8:09", 5, "D"),
            row("8:10", "8:20", "8:17", 6, "F"),
        ]


class TestListing13StreamAfterWatermark:
    def test_one_final_row_per_window(self, engine, q7_sql):
        out = engine.query(q7_sql + " EMIT STREAM AFTER WATERMARK").stream(
            until="8:21"
        )
        assert [c.as_tuple() for c in out] == [
            stream_row("8:00", "8:10", "8:09", 5, "D", "", "8:16", 0),
            stream_row("8:10", "8:20", "8:17", 6, "F", "", "8:21", 0),
        ]

    def test_matches_cql_rstream_output(self, engine, bid_stream, q7_sql):
        """The paper's claim: this matches Listing 1's CQL behavior."""
        sql_out = engine.query(q7_sql + " EMIT STREAM AFTER WATERMARK").stream(
            until="8:21"
        )
        cql_out = q7_cql(bid_stream)
        sql_rows = [(c.values[1], c.values[3], c.values[4]) for c in sql_out]
        cql_rows = [(ts, values[1], values[2]) for ts, values in cql_out]
        assert sql_rows == cql_rows  # (window end, price, item)


class TestListing14AfterDelay:
    def test_periodic_materialization(self, engine, q7_sql):
        out = engine.query(
            q7_sql + " EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES"
        ).stream(until="8:21")
        assert [c.as_tuple() for c in out] == [
            stream_row("8:00", "8:10", "8:05", 4, "C", "", "8:14", 0),
            stream_row("8:10", "8:20", "8:17", 6, "F", "", "8:18", 0),
            stream_row("8:00", "8:10", "8:05", 4, "C", "undo", "8:21", 1),
            stream_row("8:00", "8:10", "8:09", 5, "D", "", "8:21", 2),
        ]


class TestStreamTableDuality:
    """Accumulating the EMIT STREAM changelog reproduces the table."""

    @pytest.mark.parametrize("at", ["8:13", "8:16", "8:21"])
    def test_stream_folds_to_table(self, engine, q7_sql, at):
        stream = engine.query(q7_sql + " EMIT STREAM").stream(until=at)
        from collections import Counter

        bag = Counter()
        for change in stream:
            bag[change.values] += -1 if change.undo else 1
        table = Counter(engine.query(q7_sql).table(at=at).tuples)
        assert +bag == +table
