"""Shared fixtures: the paper's example dataset and pre-built engines."""

from __future__ import annotations

import pytest

from repro import StreamEngine
from repro.nexmark import NexmarkConfig, generate, paper_bid_stream
from repro.nexmark.queries import q7_paper, register_udfs


@pytest.fixture
def bid_stream():
    """The Section 4 example Bid stream (bidtime, price, item)."""
    return paper_bid_stream()


@pytest.fixture
def engine(bid_stream):
    """An engine with the paper's Bid stream registered."""
    eng = StreamEngine()
    eng.register_stream("Bid", bid_stream)
    return eng


@pytest.fixture
def q7_sql():
    """NEXMark Query 7 as written in Listing 2."""
    return q7_paper()


@pytest.fixture(scope="session")
def nexmark_small():
    """A small deterministic NEXMark workload shared across tests."""
    return generate(NexmarkConfig(num_events=600, seed=7))


@pytest.fixture
def nexmark_engine(nexmark_small):
    eng = StreamEngine()
    nexmark_small.register_on(eng)
    register_udfs(eng)
    return eng
