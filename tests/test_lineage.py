"""Delta lineage: deterministic sampling, provenance, byte-identity.

The load-bearing guarantees, mirroring docs/OBSERVABILITY.md:

* sampling is a pure function of ``(source, sequence)`` — no wall
  clock, no RNG — so reruns trace identical events;
* the output changelog is **byte-identical** with tracing on, off, or
  sampled, serial and sharded, shared and unshared plans (tracing rides
  alongside the data path as cause tokens, never in it);
* a subscriber delta explains back to concrete source rows through the
  operator path, with ``[shared ×k]`` attribution on shared subplans
  and shard tags on sharded flows;
* lineage survives checkpoint/restore, and the trace store is bounded
  (whole-trace eviction, counted in ``dropped``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, StreamEngine
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.obs.lineage import LineageRecorder, is_sampled, sample_hash
from repro.obs.trace import TraceCollector, TraceEvent

from .test_mqo import (
    MINUTE,
    Q_MAX,
    Q_SUM,
    Q_SUM_ALIASED,
    SCHEMA,
    make_events,
    oneshot_changes,
    query_changes,
    service_with_source,
)


def run_standing(events, sqls, config, tenant="t"):
    """Submit ``sqls``, subscribe to each, ingest ``events``; return
    (changelogs, delta streams) for byte-identity comparison."""
    svc = service_with_source(config=config)
    queries = [svc.submit(tenant, sql) for sql in sqls]
    subscribers = [
        svc.subscribe(q.query_id, f"sub-{i}") for i, q in enumerate(queries)
    ]
    for event in events:
        svc.ingest(event, "S")
    changelogs = [query_changes(q) for q in queries]
    deltas = [
        [(d.seq, d.change) for d in sub.take()] for sub in subscribers
    ]
    return svc, queries, changelogs, deltas


class TestSampling:
    def test_sample_hash_is_deterministic(self):
        assert sample_hash("bid", 7) == sample_hash("bid", 7)
        assert sample_hash("bid", 7) != sample_hash("bid", 8)
        assert sample_hash("bid", 7) != sample_hash("ask", 7)

    def test_rate_zero_samples_nothing_rate_one_everything(self):
        assert not any(is_sampled("s", seq, 0) for seq in range(100))
        assert all(is_sampled("s", seq, 1) for seq in range(100))

    def test_one_in_n_hits_roughly_a_fraction(self):
        hits = sum(is_sampled("s", seq, 8) for seq in range(4096))
        assert 0 < hits < 4096
        assert abs(hits / 4096 - 1 / 8) < 0.05

    def test_recorder_lowercases_source_names(self):
        rec = LineageRecorder(sample_rate=1)
        cause = rec.begin_event("Bid", kind="source", values=(1,), ptime=5)
        assert cause is not None
        assert rec.next_seq("BID") == 1  # same counter as "Bid"


class TestExplain:
    def test_delta_explains_to_source_rows_and_path(self):
        config = ExecutionConfig(lineage_sample=1)
        svc, (query,), (changes,), _ = run_standing(
            make_events(30), [Q_SUM], config
        )
        assert changes  # the query produced output
        recorder = query.flow.lineage
        positions = recorder.traced_positions(query.output_id)
        assert positions == list(range(len(changes)))
        explanation = svc.explain_delta(query.query_id, positions[0])
        assert explanation["output_id"] == query.query_id
        assert explanation["sources"], "no source rows attributed"
        for row in explanation["sources"]:
            assert row["source"] == "s"
            assert row["kind"] in ("source", "watermark")
        assert explanation["path"], "no operator path recorded"
        operators = [step["operator"] for step in explanation["path"]]
        assert any("scan" in op.lower() for op in operators)

    def test_shared_subplan_attribution(self):
        config = ExecutionConfig(lineage_sample=1, share_plans=True)
        svc, queries, changelogs, _ = run_standing(
            make_events(30), [Q_SUM, Q_SUM_ALIASED], config
        )
        q1, q2 = queries
        assert q1.flow is q2.flow  # grafted onto one dataflow
        explanation = svc.explain_delta(q1.query_id, 0)
        assert explanation is not None
        shared = [s for s in explanation["path"] if s["shared_by"] >= 2]
        assert shared, "no [shared ×k] step on a shared plan"

    def test_sharded_path_carries_shard_tags(self):
        config = ExecutionConfig(parallelism=2, lineage_sample=1)
        svc, (query,), (changes,), _ = run_standing(
            make_events(30), [Q_SUM], config
        )
        assert query.sharded
        assert changes
        explanation = svc.explain_delta(query.query_id, 0)
        assert explanation is not None
        shards = {s["shard"] for s in explanation["path"]}
        assert shards and shards != {None}

    def test_unsampled_position_returns_none(self):
        config = ExecutionConfig(lineage_sample=0)
        svc, (query,), (changes,), _ = run_standing(
            make_events(20), [Q_SUM], config
        )
        assert svc.explain_delta(query.query_id, 0) is None

    def test_unknown_query_raises(self):
        from repro.core.errors import ExecutionError

        svc = service_with_source(config=ExecutionConfig(lineage_sample=1))
        with pytest.raises(ExecutionError):
            svc.explain_delta("nope", 0)


class TestByteIdentity:
    @pytest.mark.parametrize("parallelism", [1, 2])
    @pytest.mark.parametrize("share", [True, False])
    def test_changelogs_identical_across_sampling_rates(
        self, parallelism, share
    ):
        events = make_events(40)
        sqls = [Q_SUM, Q_MAX]
        baseline = None
        for sample in (0, 1, 4):
            config = ExecutionConfig(
                parallelism=parallelism,
                share_plans=share,
                lineage_sample=sample,
            )
            _, _, changelogs, deltas = run_standing(events, sqls, config)
            if baseline is None:
                baseline = (changelogs, deltas)
            else:
                assert (changelogs, deltas) == baseline, (
                    f"sample={sample} changed the changelog"
                )
        # and the service changelog equals the one-shot oracle
        assert baseline[0][0] == oneshot_changes(events, Q_SUM, parallelism)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 9),
                st.integers(-50, 50),
            ),
            min_size=1,
            max_size=30,
        ),
        sample=st.sampled_from([1, 3, 7]),
        parallelism=st.sampled_from([1, 2]),
        share=st.booleans(),
    )
    def test_property_tracing_never_touches_the_changelog(
        self, rows, sample, parallelism, share
    ):
        events, ptime = [], 1_000_000
        for i, (k, w, v) in enumerate(rows):
            ptime += 10_000
            events.append(ins(ptime, (k, w * MINUTE, v)))
            if i % 4 == 3:
                ptime += 1_000
                events.append(wm(ptime, (i // 4 + 1) * 2 * MINUTE))
        sqls = [Q_SUM, Q_SUM_ALIASED] if share else [Q_SUM]
        off = ExecutionConfig(
            parallelism=parallelism, share_plans=share, lineage_sample=0
        )
        on = ExecutionConfig(
            parallelism=parallelism, share_plans=share, lineage_sample=sample
        )
        _, _, base_changes, base_deltas = run_standing(events, sqls, off)
        _, _, traced_changes, traced_deltas = run_standing(events, sqls, on)
        assert traced_changes == base_changes
        assert traced_deltas == base_deltas


class TestCheckpointRestore:
    def test_lineage_survives_checkpoint_restore(self, tmp_path):
        config = ExecutionConfig(
            lineage_sample=1, checkpoint_dir=str(tmp_path)
        )
        events = make_events(40)
        svc = service_with_source(config=config)
        query = svc.submit("t", Q_SUM)
        for event in events[:25]:
            svc.ingest(event, "S")
        svc.checkpoint()
        before = query.flow.lineage.traced_positions(query.query_id)

        resumed = StandingQueryService_resume(config)
        restored = resumed.session.get(query.query_id)
        recorder = restored.flow.lineage
        assert recorder is not None
        assert recorder.traced_positions(query.query_id) == before
        # provenance recorded before the cut still explains
        if before:
            explanation = resumed.explain_delta(query.query_id, before[0])
            assert explanation is not None and explanation["sources"]
        # and the resumed flow keeps tracing new deltas
        for event in events[25:]:
            resumed.ingest(event, "S")
        after = recorder.traced_positions(query.query_id)
        assert len(after) >= len(before)
        assert query_changes(restored) == oneshot_changes(events, Q_SUM)

    def test_sharded_lineage_survives_restore(self, tmp_path):
        config = ExecutionConfig(
            parallelism=2, lineage_sample=1, checkpoint_dir=str(tmp_path)
        )
        events = make_events(40)
        svc = service_with_source(config=config)
        query = svc.submit("t", Q_SUM)
        for event in events[:25]:
            svc.ingest(event, "S")
        svc.checkpoint()

        resumed = StandingQueryService_resume(config)
        restored = resumed.session.get(query.query_id)
        assert restored.sharded
        assert restored.flow.lineage is not None
        for event in events[25:]:
            resumed.ingest(event, "S")
        assert query_changes(restored) == oneshot_changes(events, Q_SUM, 2)
        assert restored.flow.lineage.traced_positions(query.query_id)


def StandingQueryService_resume(config):
    """A fresh service resumed from ``config.checkpoint_dir``."""
    from repro.service import StandingQueryService
    from repro.service.admission import TenantPolicy

    svc = StandingQueryService(
        config=config,
        default_policy=TenantPolicy(name="*", max_standing_queries=8),
    )
    assert svc.resume() >= 1
    return svc


class TestBoundedStores:
    def test_recorder_evicts_whole_traces_past_max(self):
        rec = LineageRecorder(sample_rate=1, max_traces=4)
        for seq in range(10):
            cause = rec.begin_event(
                "s", kind="source", values=(seq,), ptime=seq
            )
            cause = rec.record_operator(cause, "scan(s)", produced=1)
            rec.record_output(cause, "q1", range(seq, seq + 1))
        summary = rec.summary()
        assert summary["sampled"] == 10
        assert summary["retained"] == 4
        assert summary["dropped"] == 6
        positions = rec.traced_positions("q1")
        assert positions == [6, 7, 8, 9]  # oldest evicted first
        assert rec.explain("q1", 0) is None
        assert rec.explain("q1", 9) is not None

    def test_trace_collector_ring_drops_oldest_but_counts_exactly(self):
        collector = TraceCollector(max_events=3)
        for i in range(8):
            collector(TraceEvent(kind="batch", ptime=i, count=2))
        assert len(collector.events) == 3
        assert [e.ptime for e in collector.events] == [5, 6, 7]
        assert collector.dropped == 5
        summary = collector.summary()
        assert summary["batches"] == 8  # exact despite the drops
        assert summary["changes"] == 16
        assert summary["dropped"] == 5

    def test_trace_collector_unbounded_mode(self):
        collector = TraceCollector(max_events=None)
        for i in range(10):
            collector(TraceEvent(kind="watermark", ptime=i, value=i))
        assert len(collector.events) == 10
        assert collector.dropped == 0

    def test_trace_collector_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TraceCollector(max_events=0)
