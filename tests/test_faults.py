"""Fault-tolerance tests: supervised recovery is invisible in the output.

The contract of :mod:`repro.runtime.supervisor` +
:mod:`repro.runtime.faults`: under any deterministic fault plan — worker
crashes between batches, crashes right after a checkpoint, simulated
hangs, transient poison rows — a sharded run restarts the failed
workers from their last checkpoint, replays their input, dedups the
re-emitted output by global sequence number, and produces a changelog
*byte-identical* to a fault-free serial run (values, ``ptime``,
``undo``, ``ver``, ordering, watermark steps).  The recovery must also
be observable: ``shard_restarts > 0`` on the metrics report proves the
faults actually fired.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, FaultPlan, FaultSpec, RetryPolicy, StreamEngine
from repro.core.errors import ExecutionError, WatermarkError
from repro.nexmark import paper_bid_stream
from repro.nexmark.queries import (
    Q3_LOCAL_ITEM_SUGGESTION,
    q7_highest_bid,
    register_udfs,
)
from repro.obs import TraceCollector
from repro.runtime import WatermarkFrontier
from repro.runtime.faults import FAULT_KINDS, FaultInjector, InjectedCrash
from repro.runtime.merge import dedup_by_seq, dedup_observations
from repro.shell import Shell

TUMBLED_BY_ITEM = (
    "SELECT item, wend, MAX(price) AS maxprice "
    "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' MINUTE) TB "
    "GROUP BY item, wend"
)

# One representative plan per fault kind.  Offsets are small so they hit
# inside every shard subsequence of the paper's Bid stream; the
# ``crash-after-checkpoint`` entry relies on the matrix retry policy's
# checkpoint_interval to have produced a first checkpoint.
FAULT_MATRIX = {
    "crash-before-batch": "crash-before-batch:shard=0,at=2",
    "crash-after-checkpoint": "crash-after-checkpoint:shard=0,at=1",
    "slow-shard": "slow-shard:shard=1,at=1",
    "poison-row": "poison-row:shard=0,at=3,times=2",
}

MATRIX_RETRY = RetryPolicy(max_restarts=3, checkpoint_interval=3)


def paper_engine(config=None):
    eng = StreamEngine(config=config)
    eng.register_stream("Bid", paper_bid_stream())
    return eng


def nexmark_q3_engine(nexmark_small, config=None):
    eng = StreamEngine(config=config)
    nexmark_small.register_on(eng)
    register_udfs(eng)
    return eng


def faulted_config(plan, backend):
    return ExecutionConfig(
        parallelism=3,
        backend=backend,
        retry=MATRIX_RETRY,
        fault_plan=plan,
    )


def assert_recovered_exactly(baseline, faulted):
    """The faulted run's every observable equals the fault-free run's."""
    rs, rf = baseline.run(), faulted.run()
    assert rf.changes == rs.changes
    assert rf.watermarks.as_pairs() == rs.watermarks.as_pairs()
    assert rf.last_ptime == rs.last_ptime
    assert rf.late_dropped == rs.late_dropped
    assert rf.expired_rows == rs.expired_rows
    recovery = rf.metrics.recovery
    assert recovery is not None and recovery.shard_restarts > 0


class TestFaultMatrix:
    """Every fault kind × both worker-pool backends, on two queries."""

    @pytest.mark.parametrize("kind", sorted(FAULT_MATRIX))
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_paper_tumble_emit_stream(self, kind, backend):
        sql = TUMBLED_BY_ITEM + " EMIT STREAM"
        baseline = paper_engine().query(sql)
        faulted = paper_engine(
            faulted_config(FAULT_MATRIX[kind], backend)
        ).query(sql)
        assert faulted.partition_decision().partitionable
        assert_recovered_exactly(baseline, faulted)
        assert faulted.stream() == baseline.stream()

    @pytest.mark.parametrize("kind", sorted(FAULT_MATRIX))
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_nexmark_q3(self, nexmark_small, kind, backend):
        baseline = nexmark_q3_engine(nexmark_small).query(
            Q3_LOCAL_ITEM_SUGGESTION
        )
        faulted = nexmark_q3_engine(
            nexmark_small, faulted_config(FAULT_MATRIX[kind], backend)
        ).query(Q3_LOCAL_ITEM_SUGGESTION)
        assert faulted.partition_decision().partitionable
        assert_recovered_exactly(baseline, faulted)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_q7_fallback_ignores_fault_plan(self, nexmark_small, backend):
        """Q7 is a global aggregate: it runs serial, where shard fault
        plans have nothing to attach to — output still matches."""
        baseline = nexmark_q3_engine(nexmark_small).query(q7_highest_bid())
        faulted = nexmark_q3_engine(
            nexmark_small,
            faulted_config(FAULT_MATRIX["crash-before-batch"], backend),
        ).query(q7_highest_bid())
        assert not faulted.partition_decision().partitionable
        rs, rf = baseline.run(), faulted.run()
        assert rf.changes == rs.changes
        assert rf.metrics.recovery is None

    def test_seeded_plan_recovers(self, nexmark_small):
        plan = FaultPlan.seeded(seed=5, shards=3, events_per_shard=100, count=3)
        baseline = nexmark_q3_engine(nexmark_small).query(
            Q3_LOCAL_ITEM_SUGGESTION
        )
        faulted = nexmark_q3_engine(
            nexmark_small, faulted_config(plan, "threads")
        ).query(Q3_LOCAL_ITEM_SUGGESTION)
        rs, rf = baseline.run(), faulted.run()
        assert rf.changes == rs.changes


class TestRecoveryObservability:
    def test_recovery_trace_events_and_metrics_line(self):
        engine = paper_engine(
            ExecutionConfig(
                parallelism=3,
                backend="sync",
                retry=MATRIX_RETRY,
                fault_plan="crash-before-batch:shard=0,at=2",
            )
        )
        flow = engine.query(TUMBLED_BY_ITEM).sharded_dataflow()
        collector = TraceCollector()
        flow.trace = collector
        result = flow.run()
        restarts = result.metrics.recovery.shard_restarts
        assert restarts > 0
        assert collector.recoveries == restarts
        assert collector.summary()["recoveries"] == restarts
        recovery_events = [e for e in collector.events if e.kind == "recovery"]
        assert all(e.shard == 0 for e in recovery_events)
        assert all(e.operator == "supervisor:crash" for e in recovery_events)
        assert recovery_events[0].count == 1  # 1-based attempt number
        assert "recovery:" in result.metrics.render()
        assert "shard_restarts=1" in result.metrics.render()

    def test_watch_dashboard_shows_restarts(self):
        engine = paper_engine(
            ExecutionConfig(
                parallelism=2,
                backend="sync",
                retry=MATRIX_RETRY,
                fault_plan="crash-before-batch:shard=0,at=2",
            )
        )
        out = Shell(engine).feed(f"\\watch {TUMBLED_BY_ITEM};")
        assert "recovery" in out and "restart" in out

    def test_checkpoint_persists_recovery_stats(self):
        engine = paper_engine(
            ExecutionConfig(
                parallelism=2,
                backend="sync",
                retry=MATRIX_RETRY,
                fault_plan="crash-before-batch:shard=0,at=2",
            )
        )
        query = engine.query(TUMBLED_BY_ITEM)
        flow = query.sharded_dataflow()
        flow.run()
        assert flow.recovery.shard_restarts > 0
        recovered = query.sharded_dataflow(
            ExecutionConfig(fault_plan=FaultPlan())
        )
        recovered.restore(flow.checkpoint())
        assert recovered.recovery.shard_restarts == flow.recovery.shard_restarts


class TestRetryPolicy:
    def test_budget_exhaustion_propagates_original_failure(self):
        engine = paper_engine(
            ExecutionConfig(
                parallelism=2,
                backend="sync",
                retry=RetryPolicy(max_restarts=2),
                fault_plan="poison-row:shard=0,at=1,times=10",
            )
        )
        with pytest.raises(InjectedCrash):
            engine.query(TUMBLED_BY_ITEM).run()

    def test_zero_budget_means_no_retry(self):
        engine = paper_engine(
            ExecutionConfig(
                parallelism=2,
                backend="sync",
                retry=RetryPolicy(max_restarts=0),
                fault_plan="crash-before-batch:shard=0,at=1",
            )
        )
        with pytest.raises(InjectedCrash):
            engine.query(TUMBLED_BY_ITEM).run()

    def test_backoff_schedule(self):
        policy = RetryPolicy(
            backoff_base_ms=100, backoff_factor=2.0, backoff_cap_ms=300
        )
        assert [policy.delay_ms(n) for n in (1, 2, 3, 4)] == [
            100.0,
            200.0,
            300.0,
            300.0,
        ]

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(backoff_base_ms=0)
        assert policy.delay_ms(1) == 0.0 and policy.delay_ms(10) == 0.0

    def test_policy_validation(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(max_restarts=-1)
        with pytest.raises(ExecutionError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ExecutionError):
            RetryPolicy(checkpoint_interval=-1)


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(
            "crash-before-batch:shard=1,at=5;poison-row:at=3,times=2"
        )
        assert plan.faults == (
            FaultSpec("crash-before-batch", shard=1, at=5),
            FaultSpec("poison-row", at=3, times=2),
        )
        assert FaultPlan.parse(plan.spec_string()) == plan

    def test_parse_rejects_garbage(self):
        with pytest.raises(ExecutionError):
            FaultPlan.parse("meteor-strike")
        with pytest.raises(ExecutionError):
            FaultPlan.parse("poison-row:when=later")
        with pytest.raises(ExecutionError):
            FaultPlan.parse("poison-row:at=soon")
        with pytest.raises(ExecutionError):
            FaultPlan.parse("  ;  ")

    def test_spec_validation(self):
        with pytest.raises(ExecutionError):
            FaultSpec("crash-before-batch", shard=-1)
        with pytest.raises(ExecutionError):
            FaultSpec("crash-before-batch", times=0)

    def test_seeded_is_deterministic_and_private(self):
        import random

        random.seed(123)
        first = FaultPlan.seeded(seed=9, shards=4, events_per_shard=50, count=3)
        state = random.getstate()
        second = FaultPlan.seeded(seed=9, shards=4, events_per_shard=50, count=3)
        assert first == second
        assert random.getstate() == state  # global RNG untouched
        assert first != FaultPlan.seeded(
            seed=10, shards=4, events_per_shard=50, count=3
        )
        assert all(spec.kind in FAULT_KINDS for spec in first.faults)

    def test_injector_heals_after_times_attempts(self):
        injector = FaultInjector(FaultPlan.parse("poison-row:at=2,times=2"))
        with pytest.raises(InjectedCrash):
            injector.before_event(shard=0, attempt=0, offset=2)
        with pytest.raises(InjectedCrash):
            injector.before_event(shard=0, attempt=1, offset=2)
        injector.before_event(shard=0, attempt=2, offset=2)  # healed
        injector.before_event(shard=1, attempt=0, offset=2)  # other shard


# ---------------------------------------------------------------------------
# dedup properties
# ---------------------------------------------------------------------------


@st.composite
def replayed_logs(draw):
    """A shard output log with deterministic replay duplicates."""
    base = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.lists(st.integers(), min_size=1, max_size=3),
            ),
            max_size=15,
            unique_by=lambda item: item[0],
        )
    )
    log = list(base)
    if base:
        for index in draw(st.lists(st.integers(0, len(base) - 1), max_size=10)):
            log.append(base[index])
    return base, log


@settings(max_examples=100, deadline=None)
@given(data=replayed_logs())
def test_dedup_by_seq_is_idempotent(data):
    base, log = data
    unique, drops = dedup_by_seq(log)
    assert {seq for seq, _ in unique} == {seq for seq, _ in base}
    assert drops == sum(len(c) for _, c in log) - sum(len(c) for _, c in unique)
    again, drops_again = dedup_by_seq(unique)
    assert again == unique
    assert drops_again == 0


def test_dedup_by_seq_rejects_divergent_replay():
    with pytest.raises(ExecutionError, match="replay diverged"):
        dedup_by_seq([(1, ["a"]), (1, ["b"])])


def test_dedup_observations_rejects_divergent_replay():
    assert dedup_observations([(1, 10, 20), (1, 10, 20)]) == [(1, 10, 20)]
    with pytest.raises(ExecutionError, match="replay diverged"):
        dedup_observations([(1, 10, 20), (1, 10, 30)])


# ---------------------------------------------------------------------------
# frontier clamping (the satellite bugfix)
# ---------------------------------------------------------------------------


class TestFrontierRestoreClamp:
    def test_restore_shard_clamps_and_counts(self):
        frontier = WatermarkFrontier(2)
        frontier.observe(0, 100, 50)
        frontier.observe(1, 110, 60)
        # a restarted shard comes back with its checkpoint-time watermark
        assert frontier.restore_shard(0, 10) == 50  # clamped, not regressed
        assert frontier.wm_regressions == 1
        assert frontier.shard_value(0) == 50
        # at-or-above values pass through unclamped
        assert frontier.restore_shard(0, 55) == 55
        assert frontier.wm_regressions == 1

    def test_restore_snapshot_clamps_below_live_values(self):
        frontier = WatermarkFrontier(2)
        frontier.observe(0, 100, 50)
        frontier.observe(1, 110, 60)
        stale = WatermarkFrontier(2)
        stale.observe(0, 90, 20)
        frontier.restore(stale.snapshot())
        assert frontier.shard_value(0) == 50  # not regressed to 20
        assert frontier.shard_value(1) == 60
        assert frontier.wm_regressions >= 2
        # the published minimum kept its further-along track
        assert frontier.merged.current == 50

    def test_forward_observation_still_monotonic_after_clamp(self):
        frontier = WatermarkFrontier(2)
        frontier.observe(0, 100, 50)
        frontier.restore_shard(0, 10)
        with pytest.raises(WatermarkError):
            frontier.observe(0, 120, 40)  # regression still rejected
        frontier.observe(0, 120, 70)  # advance still fine
        assert frontier.shard_value(0) == 70
