"""Tests for the CQL baseline (the STREAM model)."""

import pytest

from repro.core.errors import ValidationError
from repro.core.relation import Relation
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import minutes, t
from repro.core.tvr import TimeVaryingRelation
from repro.cql import (
    CqlStream,
    dstream,
    istream,
    now_window,
    range_window,
    rows_window,
    rstream,
    select,
    unbounded_window,
)
from repro.cql.relops import aggregate, cross_join, project, scalar, theta_join

SCHEMA = Schema(
    [timestamp_col("ts", event_time=True), int_col("v"), string_col("k")]
)


def make_stream(*elements):
    plain = Schema([int_col("v")])
    return CqlStream(plain, [(ts, (v,)) for ts, v in elements])


class TestCqlStream:
    def test_elements_sorted_by_timestamp(self):
        stream = make_stream((5, 50), (1, 10), (3, 30))
        assert [ts for ts, _ in stream] == [1, 3, 5]

    def test_rows_until(self):
        stream = make_stream((1, 10), (3, 30), (5, 50))
        assert len(stream.rows_until(3)) == 2

    def test_from_tvr_buffers_out_of_order(self):
        """Heartbeat semantics: rows are delivered in event-time order."""
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(100, (t("8:07"), 1, "late-arriving-first"))
        tvr.insert(200, (t("8:05"), 2, "early-event"))
        tvr.advance_watermark(300, t("8:10"))
        stream = CqlStream.from_tvr(tvr, "ts")
        assert [ts for ts, _ in stream] == [t("8:05"), t("8:07")]

    def test_from_tvr_drops_beyond_final_heartbeat(self):
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(100, (t("8:07"), 1, "a"))
        tvr.insert(150, (t("8:30"), 2, "never-released"))
        tvr.advance_watermark(300, t("8:10"))
        stream = CqlStream.from_tvr(tvr, "ts")
        assert len(stream) == 1

    def test_from_tvr_time_column_becomes_metadata(self):
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(100, (t("8:07"), 1, "a"))
        tvr.advance_watermark(200, t("9:00"))
        stream = CqlStream.from_tvr(tvr, "ts")
        assert stream.schema.column_names() == ["v", "k"]

    def test_from_tvr_rejects_retractions(self):
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(100, (t("8:07"), 1, "a"))
        tvr.retract(150, (t("8:07"), 1, "a"))
        with pytest.raises(ValidationError, match="append-only"):
            CqlStream.from_tvr(tvr, "ts")


class TestWindows:
    def test_range_tumbling(self):
        stream = make_stream(
            (t("8:02"), 1), (t("8:07"), 2), (t("8:12"), 3)
        )
        seq = range_window(stream, minutes(10), minutes(10))
        assert seq.ticks == [t("8:10"), t("8:20")]
        assert sorted(seq.at(t("8:10")).tuples) == [(1,), (2,)]
        assert seq.at(t("8:20")).tuples == [(3,)]

    def test_range_sliding(self):
        stream = make_stream((t("8:02"), 1), (t("8:07"), 2))
        seq = range_window(stream, minutes(10), minutes(5))
        assert t("8:05") in seq.ticks
        assert seq.at(t("8:05")).tuples == [(1,)]
        assert len(seq.at(t("8:10"))) == 2

    def test_rows_window(self):
        stream = make_stream((1, 10), (2, 20), (3, 30))
        seq = rows_window(stream, 2, slide=1)
        assert seq.at(3).tuples == [(20,), (30,)]

    def test_now_window(self):
        stream = make_stream((1, 10), (2, 20))
        seq = now_window(stream, slide=1)
        assert seq.at(2).tuples == [(20,)]
        assert seq.at(1).tuples == [(10,)]

    def test_unbounded_window(self):
        stream = make_stream((1, 10), (2, 20))
        seq = unbounded_window(stream, slide=1)
        assert len(seq.at(2)) == 2

    def test_bad_parameters(self):
        stream = make_stream((1, 10))
        with pytest.raises(ValidationError):
            range_window(stream, 0)
        with pytest.raises(ValidationError):
            rows_window(stream, 0, slide=1)


class TestStreamOps:
    def _seq(self):
        # relation contents per tick: {1}, {1,2}, {2}
        plain = Schema([int_col("v")])
        contents = {1: [(1,)], 2: [(1,), (2,)], 3: [(2,)]}
        from repro.cql.windows import RelationSequence

        return RelationSequence(
            plain, [1, 2, 3], lambda tick: Relation(plain, contents[tick])
        )

    def test_istream(self):
        out = istream(self._seq())
        assert list(out) == [(1, (1,)), (2, (2,))]

    def test_dstream(self):
        out = dstream(self._seq())
        assert list(out) == [(3, (1,))]

    def test_rstream(self):
        out = rstream(self._seq())
        assert list(out) == [
            (1, (1,)), (2, (1,)), (2, (2,)), (3, (2,)),
        ]

    def test_istream_dstream_are_changelog_duals(self):
        """Istream/Dstream together encode the TVR as a changelog."""
        from collections import Counter

        seq = self._seq()
        bag = Counter()
        adds = {ts: [] for ts in seq.ticks}
        for ts, values in istream(seq):
            adds[ts].append((values, 1))
        for ts, values in dstream(seq):
            adds[ts].append((values, -1))
        for tick in seq.ticks:
            for values, delta in adds[tick]:
                bag[values] += delta
            assert +bag == +Counter(seq.at(tick).tuples)


class TestRelOps:
    def test_select_project(self):
        plain = Schema([int_col("v")])
        rel = Relation(plain, [(1,), (5,)])
        assert select(rel, lambda r: r[0] > 2).tuples == [(5,)]
        doubled = project(rel, plain, lambda r: (r[0] * 2,))
        assert doubled.tuples == [(2,), (10,)]

    def test_joins(self):
        a = Relation(Schema([int_col("x")]), [(1,), (2,)])
        b = Relation(Schema([int_col("y")]), [(2,), (3,)])
        assert len(cross_join(a, b)) == 4
        matched = theta_join(a, b, lambda r: r[0] == r[1])
        assert matched.tuples == [(2, 2)]

    def test_aggregate(self):
        rel = Relation(
            Schema([string_col("k"), int_col("v")]),
            [("a", 1), ("a", 3), ("b", 5)],
        )
        out = aggregate(rel, [0], [("total", lambda rows: sum(r[1] for r in rows))])
        assert sorted(out.tuples) == [("a", 4), ("b", 5)]

    def test_scalar(self):
        rel = Relation(Schema([int_col("v")]), [(4,), (9,)])
        assert scalar(rel, lambda rows: max(r[0] for r in rows)) == 9
        assert scalar(Relation(Schema([int_col("v")])), max) is None
