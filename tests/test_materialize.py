"""Tests for the EMIT materializers (Extensions 4-7) on synthetic TVRs."""

import pytest

from repro.core.changelog import Change, ChangeKind
from repro.core.emit import EmitSpec
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, minutes, t
from repro.core.watermark import WatermarkTrack
from repro.exec.executor import RunResult
from repro.exec.materialize import (
    StreamChange,
    apply_emit_delays,
    stream_schema,
    stream_view,
    table_view,
)

SCHEMA = Schema([timestamp_col("wend", event_time=True), int_col("v")])


def ins(values, ptime):
    return Change(ChangeKind.INSERT, tuple(values), ptime)


def rm(values, ptime):
    return Change(ChangeKind.RETRACT, tuple(values), ptime)


def result(changes, wm_pairs=()):
    track = WatermarkTrack()
    for ptime, value in wm_pairs:
        track.advance(ptime, value)
    last = max(
        [c.ptime for c in changes] + [pt for pt, _ in wm_pairs], default=0
    )
    return RunResult(
        schema=SCHEMA, changes=list(changes), watermarks=track, last_ptime=last
    )


WEND = t("8:10")
COMPLETION = (0,)
EMIT_KEYS = (0,)


class TestDefaultEmit:
    def test_raw_changelog_passthrough(self):
        res = result([ins((WEND, 1), 100), rm((WEND, 1), 200)])
        out = apply_emit_delays(res, EmitSpec(), COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert out == res.changes

    def test_until_truncates(self):
        res = result([ins((WEND, 1), 100), rm((WEND, 1), 200)])
        out = apply_emit_delays(res, EmitSpec(), COMPLETION, EMIT_KEYS, 150)
        assert len(out) == 1


class TestAfterWatermark:
    def test_speculative_rows_suppressed(self):
        # v=1 replaced by v=2 before the watermark passes: only v=2 emits
        res = result(
            [ins((WEND, 1), 100), rm((WEND, 1), 150), ins((WEND, 2), 150)],
            wm_pairs=[(300, t("8:15"))],
        )
        spec = EmitSpec(after_watermark=True)
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert [(c.values, c.ptime) for c in out] == [((WEND, 2), 300)]

    def test_ptime_is_watermark_passing_instant(self):
        res = result(
            [ins((WEND, 1), 100)],
            wm_pairs=[(200, t("8:05")), (400, t("8:30"))],
        )
        spec = EmitSpec(after_watermark=True)
        (change,) = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert change.ptime == 400

    def test_row_arriving_after_completeness_emits_immediately(self):
        res = result(
            [ins((t("9:00"), 1), 500)],
            wm_pairs=[(300, t("9:30"))],
        )
        spec = EmitSpec(after_watermark=True)
        (change,) = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert change.ptime == 500

    def test_retract_of_emitted_row_propagates(self):
        res = result(
            [ins((WEND, 1), 100), rm((WEND, 1), 500)],
            wm_pairs=[(300, t("8:30"))],
        )
        spec = EmitSpec(after_watermark=True)
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert [c.kind for c in out] == [ChangeKind.INSERT, ChangeKind.RETRACT]

    def test_no_completion_columns_requires_full_input(self):
        res = result([ins((WEND, 1), 100)], wm_pairs=[(200, t("9:00"))])
        spec = EmitSpec(after_watermark=True)
        out = apply_emit_delays(res, spec, None, EMIT_KEYS, MAX_TIMESTAMP)
        assert out == []  # watermark never reached +inf
        res2 = result([ins((WEND, 1), 100)], wm_pairs=[(200, MAX_TIMESTAMP)])
        out2 = apply_emit_delays(res2, spec, None, EMIT_KEYS, MAX_TIMESTAMP)
        assert len(out2) == 1

    def test_prefix_stability(self):
        """A query at time T sees the same prefix as a later query."""
        res = result(
            [ins((WEND, 1), 100), ins((t("8:20"), 2), 250)],
            wm_pairs=[(200, t("8:12")), (400, t("8:25"))],
        )
        spec = EmitSpec(after_watermark=True)
        full = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        early = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, 300)
        assert early == [c for c in full if c.ptime <= 300]


class TestAfterDelay:
    def test_coalesces_updates(self):
        # three quick updates inside one delay window: one materialization
        res = result(
            [
                ins((WEND, 1), 100),
                rm((WEND, 1), 200),
                ins((WEND, 2), 200),
                rm((WEND, 2), 300),
                ins((WEND, 3), 300),
            ]
        )
        spec = EmitSpec(delay=minutes(10))
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.INSERT, (WEND, 3))
        ]
        assert out[0].ptime == 100 + minutes(10)

    def test_timer_rearms_after_fire(self):
        delay = 1000
        res = result([ins((WEND, 1), 100), rm((WEND, 1), 5000), ins((WEND, 2), 5000)])
        spec = EmitSpec(delay=delay)
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert [(c.kind, c.values, c.ptime) for c in out] == [
            (ChangeKind.INSERT, (WEND, 1), 1100),
            (ChangeKind.RETRACT, (WEND, 1), 6000),
            (ChangeKind.INSERT, (WEND, 2), 6000),
        ]

    def test_separate_keys_have_separate_timers(self):
        other = t("9:00")
        res = result([ins((WEND, 1), 100), ins((other, 9), 400)])
        spec = EmitSpec(delay=1000)
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert [(c.values[0], c.ptime) for c in out] == [
            (WEND, 1100),
            (other, 1400),
        ]

    def test_change_at_fire_instant_included(self):
        """Listing 14: a change landing exactly at the deadline is included."""
        res = result([ins((WEND, 1), 100), rm((WEND, 1), 1100), ins((WEND, 2), 1100)])
        spec = EmitSpec(delay=1000)
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert [(c.kind, c.values) for c in out] == [(ChangeKind.INSERT, (WEND, 2))]

    def test_net_zero_change_fires_nothing(self):
        res = result([ins((WEND, 1), 100), rm((WEND, 1), 200)])
        spec = EmitSpec(delay=1000)
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        assert out == []


class TestCombined:
    def test_early_then_on_time(self):
        """Extension 7: periodic partials plus a final on-time row."""
        res = result(
            [
                ins((WEND, 1), 100),
                rm((WEND, 1), minutes(3)),
                ins((WEND, 2), minutes(3)),
            ],
            wm_pairs=[(minutes(5), t("8:30"))],
        )
        spec = EmitSpec(delay=minutes(2), after_watermark=True)
        out = apply_emit_delays(res, spec, COMPLETION, EMIT_KEYS, MAX_TIMESTAMP)
        # early firing at 100+2min with v=1, then the on-time diff at wm
        assert out[0].values == (WEND, 1)
        assert out[0].ptime == 100 + minutes(2)
        on_time = [c for c in out if c.ptime == minutes(5)]
        assert (ChangeKind.INSERT, (WEND, 2)) in [
            (c.kind, c.values) for c in on_time
        ]


class TestStreamView:
    def test_metadata_columns(self):
        res = result([ins((WEND, 1), 100), rm((WEND, 1), 200), ins((WEND, 2), 200)])
        out = stream_view(res, EmitSpec(stream=True), COMPLETION, EMIT_KEYS)
        assert [(c.undo, c.ver) for c in out] == [
            (False, 0),
            (True, 1),
            (False, 2),
        ]
        assert out[0].as_tuple() == (WEND, 1, "", 100, 0)

    def test_ver_counts_per_key(self):
        other = t("9:00")
        res = result(
            [ins((WEND, 1), 100), ins((other, 5), 150), rm((WEND, 1), 200),
             ins((WEND, 2), 200)]
        )
        out = stream_view(res, EmitSpec(stream=True), COMPLETION, EMIT_KEYS)
        vers = [(c.values[0], c.ver) for c in out]
        assert vers == [(WEND, 0), (other, 0), (WEND, 1), (WEND, 2)]

    def test_stream_schema(self):
        s = stream_schema(SCHEMA)
        assert s.column_names() == ["wend", "v", "undo", "ptime", "ver"]
        # metadata view drops event-time alignment
        assert not s.columns[0].event_time


class TestTableView:
    def test_snapshot_and_sort_limit(self):
        res = result(
            [ins((WEND, 3), 100), ins((WEND, 1), 100), ins((WEND, 2), 100)]
        )
        rel = table_view(
            res, EmitSpec(), COMPLETION, EMIT_KEYS,
            sort_keys=[(1, False)], limit=2,
        )
        assert [row[1] for row in rel.tuples] == [3, 2]

    def test_nulls_sort_last_ascending(self):
        res = result([ins((WEND, None), 100), ins((WEND, 1), 100)])
        rel = table_view(res, EmitSpec(), COMPLETION, EMIT_KEYS, sort_keys=[(1, True)])
        assert [row[1] for row in rel.tuples] == [1, None]

    def test_delay_table_shows_last_materialization(self):
        res = result([ins((WEND, 1), 100), rm((WEND, 1), 150), ins((WEND, 2), 150)])
        spec = EmitSpec(delay=1000)
        # before any timer fires: empty
        assert len(table_view(res, spec, COMPLETION, EMIT_KEYS, at=500)) == 0
        # after the 100+1000 deadline: coalesced to v=2
        rel = table_view(res, spec, COMPLETION, EMIT_KEYS, at=2000)
        assert rel.tuples == [(WEND, 2)]
