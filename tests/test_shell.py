"""Tests for the interactive shell (driven through feed())."""

import io

import pytest

from repro import StreamEngine
from repro.io import format_script
from repro.nexmark import paper_bid_stream
from repro.shell import Shell


@pytest.fixture
def script_file(tmp_path):
    path = tmp_path / "bids.script"
    path.write_text(format_script(paper_bid_stream()))
    return str(path)


@pytest.fixture
def shell(script_file):
    sh = Shell()
    sh.feed(f"\\load Bid {script_file}")
    return sh


class TestCommands:
    def test_help(self):
        assert "Commands:" in Shell().feed("\\help")

    def test_tables_empty(self):
        assert "no relations" in Shell().feed("\\tables")

    def test_load_and_tables(self, shell):
        assert shell.feed("\\tables") == "bid"

    def test_schema(self, shell):
        out = shell.feed("\\schema Bid")
        assert "bidtime" in out and "EVENT TIME" in out

    def test_load_missing_file(self):
        out = Shell().feed("\\load X /nonexistent/path")
        assert out.startswith("error:")

    def test_quit(self):
        sh = Shell()
        assert sh.feed("\\quit") == "bye"
        assert sh.done

    def test_unknown_command(self):
        assert "unknown command" in Shell().feed("\\frobnicate")

    def test_at_and_reset(self, shell):
        assert "8:13" in shell.feed("\\at 8:13")
        assert "reset" in shell.feed("\\at")

    def test_explain(self, shell):
        out = shell.feed("\\explain SELECT * FROM Bid;")
        assert "Scan(Bid stream)" in out

    def test_save_round_trips(self, shell, tmp_path):
        out_path = tmp_path / "out.script"
        out = shell.feed(f"\\save Bid {out_path}")
        assert "wrote Bid" in out
        other = Shell()
        other.feed(f"\\load Copy {out_path}")
        assert "8:07" in other.feed("SELECT * FROM Copy;")

    def test_view_registration(self, shell):
        out = shell.feed("\\view Cheap SELECT item FROM Bid WHERE price < 3;")
        assert "registered view" in out
        result = shell.feed("SELECT * FROM Cheap;")
        assert "A" in result and "E" in result and "F" not in result


class TestSql:
    def test_simple_select(self, shell):
        out = shell.feed("SELECT * FROM Bid;")
        assert "bidtime" in out
        assert "8:07" in out

    def test_multiline_buffering(self, shell):
        assert shell.feed("SELECT price, item") is None
        assert shell.prompt == "   ...> "
        out = shell.feed("FROM Bid WHERE price > 4;")
        assert "D" in out and "F" in out and "A" not in out

    def test_at_controls_snapshot(self, shell):
        shell.feed("\\at 8:13")
        q7 = (
            "SELECT TB.wend, MAX(TB.price) m FROM Tumble(data => TABLE(Bid), "
            "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES) TB "
            "GROUP BY TB.wend;"
        )
        out = shell.feed(q7)
        assert "4" in out  # C is the max of window 1 at 8:13

    def test_emit_stream_renders_changelog(self, shell):
        out = shell.feed(
            "SELECT TB.wend, MAX(TB.price) m FROM Tumble(data => TABLE(Bid), "
            "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES) TB "
            "GROUP BY TB.wend EMIT STREAM;"
        )
        assert "undo" in out and "ver" in out

    def test_sql_error_reported(self, shell):
        out = shell.feed("SELECT nope FROM Bid;")
        assert out.startswith("error:")
        # shell keeps working afterwards
        assert "8:07" in shell.feed("SELECT * FROM Bid;")


class TestInteractiveLoop:
    def test_run_with_streams(self, script_file):
        stdin = io.StringIO(
            f"\\load Bid {script_file}\nSELECT * FROM Bid;\n\\quit\n"
        )
        stdout = io.StringIO()
        Shell().run(stdin, stdout)
        output = stdout.getvalue()
        assert "repro>" in output
        assert "8:07" in output
        assert "bye" in output
