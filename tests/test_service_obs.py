"""The per-tenant service observability plane.

Covers, mirroring docs/SERVICE.md and docs/OBSERVABILITY.md:

* the labeled histogram families (``repro_service_emit_latency_ms``,
  ``repro_service_ingest_to_push_us``) render per query/tenant and
  validate with the exposition parser (per-labelset histogram checks);
* the structured slow-query log — rising-edge episodes, not per-event
  spam — and its ``slowlog`` wire op;
* the ``lineage`` wire op tracing a subscriber delta over the wire;
* the HTTP scrape plane: ``GET /metrics`` (parseable exposition),
  ``GET /healthz`` (JSON liveness), 404/405 fallbacks;
* the shell's ``\\lineage`` command and the ``\\watch`` tenants line.
"""

import asyncio
import json

import pytest

from repro import ExecutionConfig
from repro.core.tvr import ins, wm
from repro.obs.export import parse_exposition
from repro.service import ServiceServer
from repro.shell import Shell

from .test_mqo import (
    Q_MAX,
    Q_SUM,
    make_events,
    service_with_source,
)


def ingested_service(config=None, sqls=(Q_SUM,), events=None, subscribe=True):
    svc = service_with_source(config=config)
    queries = [svc.submit(f"tenant{i}", sql) for i, sql in enumerate(sqls)]
    if subscribe:
        for i, query in enumerate(queries):
            svc.subscribe(query.query_id, f"sub-{i}")
    for event in events if events is not None else make_events(30):
        svc.ingest(event, "S")
    return svc, queries


class TestLabeledHistograms:
    def test_per_query_families_render_and_validate(self):
        svc, queries = ingested_service(sqls=(Q_SUM, Q_MAX))
        text = svc.scrape()
        families = parse_exposition(text)  # validates per labelset
        emit = families["repro_service_emit_latency_ms"]
        assert emit["type"] == "histogram"
        labelsets = {
            (labels.get("query"), labels.get("tenant"))
            for metric, labels, _ in emit["samples"]
            if metric.endswith("_count")
        }
        assert labelsets == {
            (q.query_id, q.tenant) for q in queries
        }
        push = families["repro_service_ingest_to_push_us"]
        counts = [
            value for metric, _, value in push["samples"]
            if metric.endswith("_count")
        ]
        assert any(count > 0 for count in counts), (
            "no ingest-to-push samples recorded"
        )

    def test_emit_latency_matches_flow_telemetry(self):
        svc, (query,) = ingested_service()
        telemetry = query.flow.telemetry_of(query.output_id)
        assert query.ingest_push.count > 0
        families = parse_exposition(svc.scrape())
        samples = families["repro_service_emit_latency_ms"]["samples"]
        (count,) = [
            value for metric, labels, value in samples
            if metric.endswith("_count") and labels["query"] == query.query_id
        ]
        assert count == telemetry.emit_latency.count

    def test_histogram_families_absent_with_no_queries(self):
        svc = service_with_source()
        families = parse_exposition(svc.scrape())
        assert "repro_service_emit_latency_ms" not in families
        assert "repro_service_slow_queries_total" in families


class TestSlowQueryLog:
    def test_depth_threshold_logs_one_episode(self):
        config = ExecutionConfig(slow_query_depth=3)
        svc, (query,) = ingested_service(config=config)
        # the subscriber never drains, so depth grows past 3 and stays
        assert query.subscriptions.queue_depth() > 3
        entries = svc.slow_queries()
        assert len(entries) == 1, "episodes must not repeat per event"
        (entry,) = entries
        assert entry["query"] == query.query_id
        assert entry["reason"] == "queue_depth"
        assert entry["value"] >= entry["threshold"] == 3
        assert entry["at_event"] > 0
        assert svc.session.slow_log.total == 1

    def test_recovery_reopens_the_episode(self):
        from .test_mqo import MINUTE

        config = ExecutionConfig(slow_query_depth=2)
        svc, (query,) = ingested_service(config=config, events=[])
        subscriber = query.subscriptions.get("sub-0")
        for i in range(6):  # one speculative delta per fresh window
            svc.ingest(ins(1_000_000 + i * 1_000, (0, i * 2 * MINUTE, i)), "S")
        assert svc.session.slow_log.total == 1
        subscriber.take()  # drain: depth back under the threshold
        # a quiet watermark publishes nothing, so the next health check
        # observes the recovered depth and closes the episode
        svc.ingest(wm(1_010_000, 1), "S")
        for i in range(6):
            svc.ingest(
                ins(1_020_000 + i * 1_000, (0, (6 + i) * 2 * MINUTE, i)), "S"
            )
        assert svc.session.slow_log.total == 2  # a second episode
        reasons = [e["reason"] for e in svc.slow_queries()]
        assert reasons == ["queue_depth", "queue_depth"]

    def test_p99_threshold_uses_emit_latency(self):
        # threshold of 1ms: windowed emissions wait out the watermark,
        # so p99 emit latency is far above 1ms and the episode opens.
        config = ExecutionConfig(slow_query_p99_ms=1)
        svc, (query,) = ingested_service(config=config)
        reasons = {e["reason"] for e in svc.slow_queries()}
        assert "emit_p99_ms" in reasons

    def test_thresholds_off_by_default(self):
        svc, _ = ingested_service()
        assert svc.slow_queries() == []

    def test_scrape_counts_slow_queries(self):
        config = ExecutionConfig(slow_query_depth=1)
        svc, _ = ingested_service(config=config)
        families = parse_exposition(svc.scrape())
        (sample,) = families["repro_service_slow_queries_total"]["samples"]
        assert sample[2] >= 1


class TestLineageFamilies:
    def test_scrape_exposes_lineage_counters_when_enabled(self):
        svc, _ = ingested_service(config=ExecutionConfig(lineage_sample=1))
        families = parse_exposition(svc.scrape())
        assert families["repro_service_lineage_sampled_total"]["samples"][0][2] > 0
        assert "repro_service_lineage_traces" in families

    def test_lineage_families_absent_when_disabled(self):
        svc, _ = ingested_service()
        families = parse_exposition(svc.scrape())
        assert "repro_service_lineage_sampled_total" not in families


class TestWireOps:
    def run_session(self, service, script):
        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)

            async def rpc(payload):
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            try:
                return await script(rpc, reader, server)
            finally:
                writer.close()
                await server.stop()

        return asyncio.run(drive())

    def test_lineage_op_traces_a_delta(self):
        svc, (query,) = ingested_service(
            config=ExecutionConfig(lineage_sample=1)
        )

        async def script(rpc, reader, server):
            traced = await rpc(
                {"op": "lineage", "query": query.query_id, "seq": 0}
            )
            missing = await rpc(
                {"op": "lineage", "query": query.query_id, "seq": 10**9}
            )
            unknown = await rpc({"op": "lineage", "query": "nope", "seq": 0})
            return traced, missing, unknown

        traced, missing, unknown = self.run_session(svc, script)
        assert traced["ok"] and traced["traced"]
        assert traced["lineage"]["sources"]
        assert traced["lineage"]["path"]
        assert missing["ok"] and not missing["traced"]
        assert missing["lineage"] is None
        assert not unknown["ok"]

    def test_slowlog_op_returns_entries(self):
        svc, (query,) = ingested_service(
            config=ExecutionConfig(slow_query_depth=1)
        )

        async def script(rpc, reader, server):
            return await rpc({"op": "slowlog"})

        response = self.run_session(svc, script)
        assert response["ok"]
        assert response["entries"]
        assert response["entries"][0]["query"] == query.query_id


class TestHttpPlane:
    def run_http(self, service, requests):
        """Serve the HTTP plane and issue raw requests; return responses."""

        async def fetch(host, port, request):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(request.encode())
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body = raw.partition(b"\r\n\r\n")
            status = head.split(b"\r\n", 1)[0].decode()
            headers = {
                line.split(":", 1)[0].lower(): line.split(":", 1)[1].strip()
                for line in head.decode().split("\r\n")[1:]
            }
            return status, headers, body.decode()

        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            http = await server.serve_http("127.0.0.1", 0)
            host, port = http.address
            try:
                return [
                    await fetch(host, port, request) for request in requests
                ]
            finally:
                await server.stop()

        return asyncio.run(drive())

    def test_metrics_endpoint_serves_parseable_exposition(self):
        svc, _ = ingested_service(sqls=(Q_SUM, Q_MAX))
        (response,) = self.run_http(
            svc, ["GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"]
        )
        status, headers, body = response
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"].startswith("text/plain")
        assert int(headers["content-length"]) == len(body.encode())
        families = parse_exposition(body)
        assert "repro_service_active_queries" in families
        assert "repro_service_emit_latency_ms" in families
        assert body == svc.scrape()

    def test_healthz_endpoint_serves_liveness_json(self):
        svc, _ = ingested_service()
        (response,) = self.run_http(
            svc, ["GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"]
        )
        status, headers, body = response
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"].startswith("application/json")
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["queries"] == 1
        assert document["events_ingested"] == 30
        assert document["subscribers"] == 1

    def test_unknown_route_and_method(self):
        svc, _ = ingested_service()
        responses = self.run_http(
            svc,
            [
                "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n",
                "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
            ],
        )
        assert responses[0][0] == "HTTP/1.1 404 Not Found"
        assert responses[1][0] == "HTTP/1.1 405 Method Not Allowed"

    def test_http_plane_closes_with_the_server(self):
        svc, _ = ingested_service()

        async def drive():
            server = ServiceServer(svc, "127.0.0.1", 0)
            await server.start()
            http = await server.serve_http("127.0.0.1", 0)
            host, port = http.address
            await server.stop()
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        asyncio.run(drive())


class TestShellObservability:
    def shell_with_standing_query(self):
        shell = Shell()
        from repro.core.tvr import TimeVaryingRelation

        from .test_mqo import SCHEMA

        shell.engine.register_stream("S", TimeVaryingRelation(SCHEMA))
        out = shell.feed(f"\\subscribe alice {Q_SUM};")
        assert out.startswith("admitted")
        for event in make_events(30):
            shell.service.ingest(event, "S")
        return shell

    def test_lineage_command_traces_a_delta(self):
        shell = self.shell_with_standing_query()
        query = shell.service.session.queries()[0]
        out = shell.feed(f"\\lineage {query.query_id} 0")
        assert f"{query.query_id} #0" in out
        assert "source rows:" in out
        assert "path:" in out
        assert "change(s)" in out

    def test_lineage_command_reports_untraced_and_usage(self):
        shell = self.shell_with_standing_query()
        query = shell.service.session.queries()[0]
        assert "not traced" in shell.feed(f"\\lineage {query.query_id} 99999")
        assert "usage" in shell.feed("\\lineage q1")
        fresh = Shell()
        assert "no standing queries" in fresh.feed("\\lineage q1 0")

    def test_watch_shows_per_tenant_line(self):
        shell = self.shell_with_standing_query()
        out = shell.feed("SELECT k, v FROM S EMIT STREAM;")  # warm the engine
        assert out is not None
        frame = shell.feed(f"\\watch SELECT k, v FROM S;")
        assert "tenants   1 with standing queries" in frame
        assert "alice" in frame
        assert "1 queries" in frame
        assert "p99 emit" in frame

    def test_watch_has_no_tenant_line_without_a_service(self):
        shell = Shell()
        from repro.core.tvr import TimeVaryingRelation

        from .test_mqo import SCHEMA

        shell.engine.register_stream("S", TimeVaryingRelation(SCHEMA, make_events(10)))
        frame = shell.feed("\\watch SELECT k, v FROM S;")
        assert "tenants" not in frame
