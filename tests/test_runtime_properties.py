"""Property tests: sharded execution is indistinguishable from serial.

Hypothesis generates random keyed event histories — out-of-order event
times, interleaved watermarks, duplicate keys, late rows — and random
shard counts, then checks that the sharded runtime reproduces the
serial changelog *row for row*: values, ``ptime``, ``undo``, ``ver``,
ordering, watermark steps, and the late-drop/expiry counters.  A
second property drives the sharded checkpoint/restore roundtrip at a
random crash point.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation, ins, wm

SCHEMA = Schema([int_col("k"), timestamp_col("ts", event_time=True), int_col("v")])

MINUTE = 60_000

KEYED_WINDOW_SUM = """
    SELECT k, wend, SUM(v) AS total
    FROM Tumble(data => TABLE(S),
                timecol => DESCRIPTOR(ts),
                dur => INTERVAL '2' MINUTE) TS
    GROUP BY k, wend
    EMIT STREAM
"""

WINDOW_ONLY_COUNT = """
    SELECT wend, COUNT(*) AS n
    FROM Tumble(data => TABLE(S),
                timecol => DESCRIPTOR(ts),
                dur => INTERVAL '2' MINUTE) TS
    GROUP BY wend
"""

SELF_JOIN = """
    SELECT a.k, a.v, b.v
    FROM S a JOIN S b ON a.k = b.k
    WHERE a.v < b.v
"""

QUERIES = [KEYED_WINDOW_SUM, WINDOW_ONLY_COUNT, SELF_JOIN]


@st.composite
def event_histories(draw):
    """A random keyed stream: rows with jittered event times + watermarks."""
    steps = draw(
        st.lists(
            st.tuples(
                st.booleans(),  # row or watermark advance
                st.integers(min_value=0, max_value=7),  # key / advance size
                st.integers(min_value=-3, max_value=3),  # event-time jitter (min)
                st.integers(min_value=0, max_value=99),  # value
            ),
            min_size=1,
            max_size=40,
        )
    )
    events = []
    ptime = 1_000_000
    wm_value = 0
    for is_row, a, b, c in steps:
        ptime += MINUTE // 4
        if is_row:
            event_time = max(0, wm_value + b * MINUTE)  # some rows arrive late
            events.append(ins(ptime, (a, event_time, c)))
        else:
            wm_value += a * MINUTE
            events.append(wm(ptime, wm_value))
    return events


def build_engine(events, parallelism, backend="sync", allowed_lateness=0):
    eng = StreamEngine(
        config=ExecutionConfig(
            parallelism=parallelism,
            backend=backend,
            allowed_lateness=allowed_lateness,
        )
    )
    eng.register_stream("S", TimeVaryingRelation(SCHEMA, events))
    return eng


def run_query(events, sql, parallelism, backend="sync", allowed_lateness=0):
    eng = build_engine(events, parallelism, backend, allowed_lateness)
    return eng.query(sql)


@settings(max_examples=30, deadline=None)
@given(
    events=event_histories(),
    sql=st.sampled_from(QUERIES),
    shards=st.integers(min_value=2, max_value=5),
    lateness=st.sampled_from([0, MINUTE]),
)
def test_sharded_equals_serial(events, sql, shards, lateness):
    serial = run_query(events, sql, 1, allowed_lateness=lateness)
    sharded = run_query(events, sql, shards, allowed_lateness=lateness)
    assert sharded.partition_decision().partitionable
    rs, rp = serial.run(), sharded.run()
    assert rp.changes == rs.changes  # values, ptime, undo, ver, ordering
    assert rp.watermarks.as_pairs() == rs.watermarks.as_pairs()
    assert rp.last_ptime == rs.last_ptime
    assert rp.late_dropped == rs.late_dropped
    assert rp.expired_rows == rs.expired_rows
    assert sharded.stream() == serial.stream()
    assert sharded.table().rows() == serial.table().rows()


@settings(max_examples=15, deadline=None)
@given(
    events=event_histories(),
    shards=st.integers(min_value=2, max_value=4),
)
def test_thread_pool_equals_serial(events, shards):
    serial = run_query(events, KEYED_WINDOW_SUM, 1)
    sharded = run_query(events, KEYED_WINDOW_SUM, shards, backend="threads")
    assert sharded.run().changes == serial.run().changes
    assert sharded.stream() == serial.stream()


@settings(max_examples=15, deadline=None)
@given(
    events=event_histories(),
    shards=st.integers(min_value=2, max_value=4),
    cut=st.floats(min_value=0.0, max_value=1.0),
)
def test_sharded_checkpoint_roundtrip(events, shards, cut):
    """Checkpoint at a random crash point, restore, replay: identical."""
    query = run_query(events, KEYED_WINDOW_SUM, shards)
    uninterrupted = query.run()

    split = int(len(events) * cut)
    first = query.sharded_dataflow()
    for event in events[:split]:
        first.process(event, "S")
    blob = first.checkpoint()
    del first  # the "crash"

    recovered = query.sharded_dataflow()
    recovered.restore(blob)
    for event in events[split:]:
        recovered.process(event, "S")
    result = recovered.finish()
    assert result.changes == uninterrupted.changes
    assert result.watermarks.as_pairs() == uninterrupted.watermarks.as_pairs()
    assert result.last_ptime == uninterrupted.last_ptime
