"""SQL-level integration tests for Session windows (§8 custom windowing)."""

import pytest

from repro import StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import minutes, t
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema(
    [
        int_col("user"),
        timestamp_col("at", event_time=True),
        int_col("n"),
    ]
)

SESSIONS = """
SELECT SB.user, SB.wstart, SB.wend, COUNT(*) AS events
FROM Session(data => TABLE(S), timecol => DESCRIPTOR(at),
             gap => INTERVAL '5' MINUTES, keycol => DESCRIPTOR(user)) SB
GROUP BY SB.wend, SB.user
"""


def make_engine(events, final_wm=None):
    tvr = TimeVaryingRelation(SCHEMA)
    for i, (user, at) in enumerate(events):
        tvr.insert(1000 + i, (user, at, i))
    tvr.advance_watermark(9000, final_wm if final_wm else t("23:00"))
    engine = StreamEngine()
    engine.register_stream("S", tvr)
    return engine


class TestSessionSql:
    def test_burst_forms_one_session(self):
        engine = make_engine(
            [(1, t("9:00")), (1, t("9:02")), (1, t("9:04"))]
        )
        rel = engine.query(SESSIONS).table()
        assert rel.tuples == [(1, t("9:00"), t("9:09"), 3)]

    def test_gap_splits_sessions(self):
        engine = make_engine([(1, t("9:00")), (1, t("9:10"))])
        rel = engine.query(SESSIONS).table().sorted(["wstart"])
        assert rel.tuples == [
            (1, t("9:00"), t("9:05"), 1),
            (1, t("9:10"), t("9:15"), 1),
        ]

    def test_out_of_order_merge_updates_group(self):
        """A late bridging row merges two sessions; the grouped result
        reflects the merge, not the intermediate split."""
        engine = make_engine(
            [(1, t("9:00")), (1, t("9:08")), (1, t("9:04"))]  # bridge last
        )
        rel = engine.query(SESSIONS).table()
        assert rel.tuples == [(1, t("9:00"), t("9:13"), 3)]

    def test_emit_stream_shows_merge_churn(self):
        engine = make_engine(
            [(1, t("9:00")), (1, t("9:08")), (1, t("9:04"))]
        )
        out = engine.query(SESSIONS + " EMIT STREAM").stream()
        # two separate sessions appear, then both retract into the merge
        final = [c for c in out if not c.undo][-1]
        assert final.values == (1, t("9:00"), t("9:13"), 3)
        assert any(c.undo for c in out)

    def test_after_watermark_emits_closed_sessions_once(self):
        engine = make_engine(
            [(1, t("9:00")), (1, t("9:02")), (2, t("9:30"))],
            final_wm=t("9:20"),  # user 1's session closed, user 2's open
        )
        out = engine.query(SESSIONS + " EMIT STREAM AFTER WATERMARK").stream()
        assert [(c.values[0], c.undo) for c in out] == [(1, False)]

    def test_sessions_per_key_do_not_interact(self):
        engine = make_engine(
            [(1, t("9:00")), (2, t("9:02")), (1, t("9:03"))]
        )
        rel = engine.query(SESSIONS).table().sorted(["user"])
        assert [r[0] for r in rel.tuples] == [1, 2]
        assert rel.tuples[0][3] == 2  # user 1 has both events
