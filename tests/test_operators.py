"""Unit tests for physical operators, driven directly (no SQL)."""

import pytest

from repro.core.changelog import Change, ChangeKind
from repro.core.errors import ExecutionError
from repro.core.schema import Column, Schema, SqlType, int_col, timestamp_col
from repro.core.times import MIN_TIMESTAMP, minutes, t
from repro.plan.logical import AggCall
from repro.exec.operators import (
    AggregateOperator,
    FilterOperator,
    HopOperator,
    JoinOperator,
    ProjectOperator,
    SessionOperator,
    TimeBound,
    TumbleOperator,
    UnionOperator,
    hop_windows,
)
from repro.sql.functions import default_registry

REG = default_registry()


def ins(values, ptime=0):
    return Change(ChangeKind.INSERT, tuple(values), ptime)


def rm(values, ptime=0):
    return Change(ChangeKind.RETRACT, tuple(values), ptime)


TS_INT = Schema([timestamp_col("ts", event_time=True), int_col("v")])


class TestStateless:
    def test_filter_keeps_kind(self):
        op = FilterOperator(TS_INT, lambda row: row[1] > 5)
        assert op.on_change(0, ins((1, 10))) == [ins((1, 10))]
        assert op.on_change(0, rm((1, 10))) == [rm((1, 10))]
        assert op.on_change(0, ins((1, 3))) == []

    def test_filter_null_is_false(self):
        op = FilterOperator(TS_INT, lambda row: None)
        assert op.on_change(0, ins((1, 10))) == []

    def test_project(self):
        schema = Schema([int_col("double")])
        op = ProjectOperator(schema, [lambda row: row[1] * 2])
        (out,) = op.on_change(0, ins((1, 21)))
        assert out.values == (42,)
        assert out.is_insert

    def test_union_forwards_all_ports(self):
        op = UnionOperator(TS_INT, arity=2)
        assert op.on_change(0, ins((1, 1))) == [ins((1, 1))]
        assert op.on_change(1, ins((2, 2))) == [ins((2, 2))]


class TestWindows:
    def test_tumble_assigns_window(self):
        schema = Schema(
            [timestamp_col("wstart"), timestamp_col("wend")]
        ).concat(TS_INT)
        op = TumbleOperator(schema, timecol=0, size=minutes(10))
        (out,) = op.on_change(0, ins((t("8:07"), 5)))
        assert out.values == (t("8:00"), t("8:10"), t("8:07"), 5)

    def test_tumble_boundary_goes_to_next_window(self):
        op = TumbleOperator(TS_INT, timecol=0, size=minutes(10))
        (out,) = op.on_change(0, ins((t("8:10"), 1)))
        assert out.values[0] == t("8:10")

    def test_tumble_null_timestamp_rejected(self):
        op = TumbleOperator(TS_INT, timecol=0, size=minutes(10))
        with pytest.raises(ExecutionError):
            op.on_change(0, ins((None, 1)))

    def test_hop_windows_function(self):
        # 10-minute windows sliding by 5: a point sits in two windows
        wins = hop_windows(t("8:07"), minutes(10), minutes(5))
        assert wins == [(t("8:00"), t("8:10")), (t("8:05"), t("8:15"))]

    def test_hop_windows_gap_can_miss(self):
        # slide > size leaves gaps
        wins = hop_windows(t("8:04"), minutes(2), minutes(5))
        assert wins == []

    def test_hop_operator_multiplies_rows(self):
        op = HopOperator(TS_INT, timecol=0, size=minutes(10), slide=minutes(5))
        out = op.on_change(0, ins((t("8:07"), 5)))
        assert len(out) == 2
        assert {o.values[0] for o in out} == {t("8:00"), t("8:05")}


def _max_agg():
    fn = REG.aggregate("MAX")
    return AggCall(fn, arg_index=1, output=Column("m", SqlType.INT))


def _count_agg(arg_index=None):
    fn = REG.aggregate("COUNT", star=arg_index is None)
    return AggCall(fn, arg_index=arg_index, output=Column("c", SqlType.INT))


class TestAggregate:
    def _op(self, aggs=None, group=(0,), et=(0,)):
        out_cols = [TS_INT.columns[i] for i in group]
        aggs = aggs if aggs is not None else [_max_agg()]
        schema = Schema(list(out_cols) + [a.output for a in aggs])
        return AggregateOperator(schema, group, aggs, et, input_bounded=False)

    def test_incremental_max_with_retraction_output(self):
        op = self._op()
        assert [c.values for c in op.on_change(0, ins((10, 5)))] == [(10, 5)]
        out = op.on_change(0, ins((10, 9)))
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.RETRACT, (10, 5)),
            (ChangeKind.INSERT, (10, 9)),
        ]

    def test_no_emission_when_result_unchanged(self):
        op = self._op()
        op.on_change(0, ins((10, 9)))
        assert op.on_change(0, ins((10, 5))) == []  # lower bid, same MAX

    def test_retraction_input_reveals_runner_up(self):
        op = self._op()
        op.on_change(0, ins((10, 5)))
        op.on_change(0, ins((10, 9)))
        out = op.on_change(0, rm((10, 9)))
        assert out[-1].values == (10, 5)

    def test_group_vanishes_on_last_retraction(self):
        op = self._op()
        op.on_change(0, ins((10, 5)))
        out = op.on_change(0, rm((10, 5)))
        assert [(c.kind, c.values) for c in out] == [(ChangeKind.RETRACT, (10, 5))]
        assert op.group_count == 0

    def test_retraction_for_empty_group_rejected(self):
        op = self._op()
        with pytest.raises(ExecutionError):
            op.on_change(0, rm((10, 5)))

    def test_late_input_dropped_after_watermark(self):
        op = self._op()
        op.on_change(0, ins((10, 5)))
        op.on_watermark(0, 10, ptime=100)  # group key 10 <= wm 10: complete
        assert op.on_change(0, ins((10, 99))) == []
        assert op.late_dropped == 1

    def test_state_freed_on_watermark(self):
        op = self._op()
        op.on_change(0, ins((10, 5)))
        op.on_change(0, ins((20, 7)))
        assert op.state_size() == 2
        op.on_watermark(0, 10, ptime=100)
        assert op.state_size() == 1  # group 10 freed, group 20 retained

    def test_global_aggregate_initial_row(self):
        schema = Schema([Column("c", SqlType.INT)])
        op = AggregateOperator(
            schema, (), [_count_agg()], (), input_bounded=True
        )
        (initial,) = op.on_open()
        assert initial.values == (0,)
        out = op.on_change(0, ins((1, 1)))
        assert [c.values for c in out] == [(0,), (1,)]
        assert out[0].is_retract

    def test_count_distinct(self):
        fn = REG.aggregate("COUNT")
        agg = AggCall(fn, arg_index=1, output=Column("c", SqlType.INT), distinct=True)
        op = self._op(aggs=[agg])
        op.on_change(0, ins((10, 7)))
        assert op.on_change(0, ins((10, 7))) == []  # duplicate value
        out = op.on_change(0, ins((10, 8)))
        assert out[-1].values == (10, 2)
        # retracting one of the two 7s keeps the distinct count
        assert op.on_change(0, rm((10, 7))) == []
        out = op.on_change(0, rm((10, 7)))
        assert out[-1].values == (10, 1)

    def test_sum_and_avg_null_handling(self):
        reg = REG
        sum_call = AggCall(reg.aggregate("SUM"), 1, Column("s", SqlType.INT))
        avg_call = AggCall(reg.aggregate("AVG"), 1, Column("a", SqlType.FLOAT))
        schema = Schema([TS_INT.columns[0], sum_call.output, avg_call.output])
        op = AggregateOperator(schema, (0,), [sum_call, avg_call], (0,), False)
        op.on_change(0, ins((10, None)))
        # all-null group: SUM and AVG are NULL
        out = op.on_change(0, ins((10, 4)))
        assert out[-1].values == (10, 4, 4.0)


class TestJoin:
    def _op(self, condition=None, **kwargs):
        schema = TS_INT.concat(TS_INT)
        return JoinOperator(schema, left_width=2, condition=condition, **kwargs)

    def test_insert_probe(self):
        op = self._op()
        assert op.on_change(0, ins((1, 10))) == []
        (out,) = op.on_change(1, ins((2, 20)))
        assert out.values == (1, 10, 2, 20)

    def test_retract_probe(self):
        op = self._op()
        op.on_change(0, ins((1, 10)))
        op.on_change(1, ins((2, 20)))
        (out,) = op.on_change(0, rm((1, 10)))
        assert out.is_retract
        assert out.values == (1, 10, 2, 20)

    def test_condition_filters(self):
        op = self._op(condition=lambda row: row[1] == row[3])
        op.on_change(0, ins((1, 10)))
        assert op.on_change(1, ins((2, 20))) == []
        (out,) = op.on_change(1, ins((2, 10)))
        assert out.values == (1, 10, 2, 10)

    def test_hash_keys(self):
        op = self._op(left_key=(1,), right_key=(1,))
        op.on_change(0, ins((1, 10)))
        op.on_change(0, ins((1, 20)))
        (out,) = op.on_change(1, ins((9, 10)))
        assert out.values == (1, 10, 9, 10)

    def test_multiplicity(self):
        op = self._op()
        op.on_change(0, ins((1, 10)))
        op.on_change(0, ins((1, 10)))
        out = op.on_change(1, ins((2, 20)))
        assert len(out) == 2

    def test_watermark_expires_state(self):
        op = self._op(left_bound=TimeBound(time_index=0, slack=minutes(10)))
        op.on_change(0, ins((t("8:05"), 1)))
        op.on_change(0, ins((t("8:30"), 2)))
        assert op.state_size() == 2
        op.on_watermark(0, t("8:20"), ptime=0)
        op.on_watermark(1, t("8:20"), ptime=0)
        assert op.state_size() == 1
        assert op.expired_rows == 1

    def test_retract_of_expired_row_is_noop(self):
        op = self._op(left_bound=TimeBound(time_index=0, slack=0))
        op.on_change(0, ins((t("8:00"), 1)))
        op.on_watermark(0, t("9:00"), ptime=0)
        op.on_watermark(1, t("9:00"), ptime=0)
        assert op.on_change(0, rm((t("8:00"), 1))) == []


class TestSession:
    def _op(self, gap=minutes(5)):
        schema = Schema(
            [timestamp_col("wstart"), timestamp_col("wend")]
        ).concat(TS_INT)
        return SessionOperator(schema, timecol=0, gap=gap)

    def test_single_row_session(self):
        op = self._op()
        (out,) = op.on_change(0, ins((t("8:00"), 1)))
        assert out.values == (t("8:00"), t("8:05"), t("8:00"), 1)

    def test_extension_retracts_and_reemits(self):
        op = self._op()
        op.on_change(0, ins((t("8:00"), 1)))
        out = op.on_change(0, ins((t("8:03"), 2)))
        # old tag for row 1 retracted; both rows re-tagged [8:00, 8:08)
        retracted = [c for c in out if c.is_retract]
        inserted = [c for c in out if c.is_insert]
        assert len(retracted) == 1
        assert {c.values[1] for c in inserted} == {t("8:08")}

    def test_merge_two_sessions(self):
        op = self._op()
        op.on_change(0, ins((t("8:00"), 1)))
        op.on_change(0, ins((t("8:08"), 2)))  # separate session [8:08, 8:13)
        out = op.on_change(0, ins((t("8:04"), 3)))  # within gap of both
        inserted = [c for c in out if c.is_insert]
        assert {c.values[0] for c in inserted} == {t("8:00")}
        assert {c.values[1] for c in inserted} == {t("8:13")}
        assert len(inserted) == 3

    def test_retraction_splits_session(self):
        op = self._op(gap=minutes(3))
        op.on_change(0, ins((t("8:00"), 1)))
        op.on_change(0, ins((t("8:02"), 2)))  # bridges 8:00 and 8:04
        op.on_change(0, ins((t("8:04"), 3)))
        out = op.on_change(0, rm((t("8:02"), 2)))
        inserted = [c for c in out if c.is_insert]
        starts = sorted(c.values[0] for c in inserted)
        assert starts == [t("8:00"), t("8:04")]

    def test_watermark_frees_closed_sessions(self):
        op = self._op()
        op.on_change(0, ins((t("8:00"), 1)))
        op.on_change(0, ins((t("9:00"), 2)))
        assert op.state_size() == 2
        op.on_watermark(0, t("8:30"), ptime=0)
        assert op.state_size() == 1

    def test_late_row_dropped(self):
        op = self._op()
        op.on_watermark(0, t("8:30"), ptime=0)
        assert op.on_change(0, ins((t("8:00"), 1))) == []
        assert op.late_dropped == 1
