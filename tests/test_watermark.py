"""Unit tests for watermark tracks and generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import WatermarkError
from repro.core.times import MAX_TIMESTAMP, MIN_TIMESTAMP
from repro.core.watermark import (
    BoundedOutOfOrderness,
    PunctuatedWatermarks,
    WatermarkTrack,
    merge_watermarks,
)


class TestWatermarkTrack:
    def test_initially_min(self):
        track = WatermarkTrack()
        assert track.current == MIN_TIMESTAMP
        assert track.value_at(100) == MIN_TIMESTAMP

    def test_step_function(self):
        track = WatermarkTrack()
        track.advance(10, 5)
        track.advance(20, 8)
        assert track.value_at(9) == MIN_TIMESTAMP
        assert track.value_at(10) == 5
        assert track.value_at(19) == 5
        assert track.value_at(20) == 8
        assert track.current == 8

    def test_monotonic_in_ptime(self):
        track = WatermarkTrack()
        track.advance(10, 5)
        with pytest.raises(WatermarkError):
            track.advance(9, 6)

    def test_monotonic_in_value(self):
        track = WatermarkTrack()
        track.advance(10, 5)
        with pytest.raises(WatermarkError):
            track.advance(11, 4)

    def test_same_value_dedup(self):
        track = WatermarkTrack()
        track.advance(10, 5)
        track.advance(11, 5)
        assert len(track.as_pairs()) == 1

    def test_first_ptime_at_or_past(self):
        track = WatermarkTrack()
        track.advance(10, 5)
        track.advance(20, 12)
        track.advance(30, 20)
        # when did the watermark first reach event time 10?
        assert track.first_ptime_at_or_past(10) == 20
        assert track.first_ptime_at_or_past(5) == 10
        assert track.first_ptime_at_or_past(12) == 20
        assert track.first_ptime_at_or_past(21) is None

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)), max_size=20))
    def test_value_at_matches_linear_scan(self, raw_pairs):
        # build a valid monotone track from arbitrary raw input
        track = WatermarkTrack()
        applied = []
        last_pt, last_v = -1, MIN_TIMESTAMP
        for pt, v in raw_pairs:
            pt = max(pt, last_pt)
            v = max(v, last_v)
            track.advance(pt, v)
            applied.append((pt, v))
            last_pt, last_v = pt, v
        for probe in range(0, 101, 7):
            expected = MIN_TIMESTAMP
            for pt, v in applied:
                if pt <= probe:
                    expected = v
            assert track.value_at(probe) == expected


class TestGenerators:
    def test_bounded_out_of_orderness(self):
        gen = BoundedOutOfOrderness(max_delay=10)
        assert gen.current == MIN_TIMESTAMP
        assert gen.observe(100) == 90
        assert gen.observe(50) == 90  # regression in input does not regress wm
        assert gen.observe(200) == 190

    def test_bounded_rejects_negative_delay(self):
        with pytest.raises(WatermarkError):
            BoundedOutOfOrderness(-1)

    def test_punctuated(self):
        gen = PunctuatedWatermarks()
        assert gen.punctuate(5) == 5
        with pytest.raises(WatermarkError):
            gen.punctuate(4)


class TestMerge:
    def test_minimum(self):
        assert merge_watermarks([5, 3, 9]) == 3

    def test_empty_is_complete(self):
        assert merge_watermarks([]) == MAX_TIMESTAMP

    @given(
        st.lists(
            st.integers(MIN_TIMESTAMP, MAX_TIMESTAMP), min_size=1
        )
    )
    def test_merge_is_min(self, values):
        # values beyond MAX_TIMESTAMP clamp to it: nothing is "more
        # complete" than a fully consumed input
        assert merge_watermarks(values) == min(values)
