"""Cross-cutting engine invariants.

Two properties that essentially *are* the paper's thesis:

* **arrival-order independence** — with explicit event timestamps and
  sound watermarks, the final result does not depend on the order rows
  arrived in (Section 3.2's whole point);
* **optimizer transparency** — every rewrite rule preserves results,
  checked by running random queries both ways.
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import seconds
from repro.core.tvr import TimeVaryingRelation
from repro.exec.executor import Dataflow
from repro.plan.planner import Planner
from repro.sql.functions import default_registry

SCHEMA = Schema(
    [timestamp_col("ts", event_time=True), int_col("v"), string_col("k")]
)

QUERIES = [
    # windowed aggregation
    "SELECT TB.wend, COUNT(*) c, SUM(TB.v) s FROM Tumble(data => TABLE(S), "
    "timecol => DESCRIPTOR(ts), dur => INTERVAL '10' SECONDS) TB "
    "GROUP BY TB.wend",
    # hop + max
    "SELECT HB.wend, MAX(HB.v) m FROM Hop(data => TABLE(S), "
    "timecol => DESCRIPTOR(ts), dur => INTERVAL '10' SECONDS, "
    "slide => INTERVAL '5' SECONDS) HB GROUP BY HB.wend",
    # filter + projection
    "SELECT v * 2 AS d, k FROM S WHERE v > 0",
    # self join against an aggregate
    "SELECT S.k FROM S, (SELECT TB.wend wend, MAX(TB.v) m FROM Tumble("
    "data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend) MX "
    "WHERE S.v = MX.m AND S.ts >= MX.wend - INTERVAL '10' SECONDS "
    "AND S.ts < MX.wend",
    # left outer self join
    "SELECT a.k, b.v FROM S a LEFT JOIN S b "
    "ON a.k = b.k AND a.v = b.v + 1",
    # semi join against a windowed aggregate
    "SELECT S.v FROM S WHERE S.v IN (SELECT MAX(TB.v) FROM Tumble("
    "data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend)",
]


def stream_from_arrivals(rows):
    """rows: event-timestamped tuples, delivered in list order with a
    sound trailing watermark."""
    tvr = TimeVaryingRelation(SCHEMA)
    ptime = 0
    max_seen = 0
    for ts, v, k in rows:
        ptime += 10
        max_seen = max(max_seen, ts)
        tvr.insert(ptime, (ts, v, k))
        tvr.advance_watermark(ptime, max_seen - seconds(30))
    # close the input completely so every window finalizes
    from repro.core.times import MAX_TIMESTAMP

    tvr.advance_watermark(ptime + 1, MAX_TIMESTAMP)
    return tvr


def run_query(sql, rows):
    engine = StreamEngine()
    engine.register_stream("S", stream_from_arrivals(rows))
    return Counter(engine.query(sql).table().tuples)


@pytest.mark.parametrize("sql", QUERIES)
def test_arrival_order_independence(sql):
    """Shuffling arrival order (within the watermark slack) never
    changes the final table."""
    rng = random.Random(99)
    base = [
        (seconds(i), rng.randrange(-50, 50), rng.choice("abc"))
        for i in range(60)
    ]
    reference = run_query(sql, base)
    for trial in range(3):
        # bounded disorder: every row lands within 25 positions (= 25s,
        # inside the 30s watermark slack) of its event-time position
        order = sorted(
            range(len(base)), key=lambda i: i + rng.uniform(0, 25)
        )
        shuffled = [base[i] for i in order]
        assert run_query(sql, shuffled) == reference


@pytest.mark.parametrize("sql", QUERIES)
def test_optimizer_preserves_results(sql):
    rng = random.Random(7)
    rows = [
        (seconds(i), rng.randrange(-50, 50), rng.choice("abc"))
        for i in range(40)
    ]
    engine = StreamEngine()
    engine.register_stream("S", stream_from_arrivals(rows))
    optimized = Counter(engine.query(sql).table().tuples)
    planner = Planner(engine._catalog, default_registry())
    raw_plan = planner.plan_sql(sql)  # no optimize()
    raw = Counter(
        Dataflow(raw_plan, engine._sources).run().snapshot().tuples
    )
    assert raw == optimized


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(-9, 9)),
        min_size=1,
        max_size=25,
    )
)
def test_emit_modes_agree_on_final_state(pairs):
    """All materialization modes converge to the same final table once
    the input is complete (Extensions 5-7 change *when*, never *what*)."""
    rows = [(seconds(ts), v, "x") for ts, v in pairs]
    sql = QUERIES[0]
    engine = StreamEngine()
    engine.register_stream("S", stream_from_arrivals(rows))
    base = Counter(engine.query(sql).table().tuples)
    for emit in (
        " EMIT AFTER WATERMARK",
        " EMIT AFTER DELAY INTERVAL '3' SECONDS",
        " EMIT AFTER DELAY INTERVAL '3' SECONDS AND AFTER WATERMARK",
    ):
        assert Counter(engine.query(sql + emit).table().tuples) == base
