"""Columnar micro-batch execution: byte-identity, codegen, recovery.

The columnar invariant (docs/RUNTIME.md section 9): at any batch size,
serial or sharded, with or without two-phase aggregation or coalescing,
the changelog a columnar run produces is *byte-identical* — values,
``ptime``, ordering, watermark steps — to the row-at-a-time run of the
same configuration.  Columnar mode changes how batches move between
operators (per-column vectors, fused filter/project pipelines,
generated loops), never what they contain.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, RetryPolicy, StreamEngine
from repro.core.changelog import Change, ChangeKind
from repro.core.colbatch import ColumnarBatch
from repro.core.errors import ExecutionError
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.schema import SqlType
from repro.core.times import seconds, t
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.exec import codegen
from repro.exec.operators.pipeline import PipelineOperator
from repro.nexmark.queries import Q3_LOCAL_ITEM_SUGGESTION
from repro.plan.rex import (
    RexCase,
    RexCast,
    RexCurrentTime,
    RexInput,
    RexLiteral,
)

KEYED_SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

TUMBLE_SQL = (
    "SELECT k, wend, COUNT(*) AS n "
    "FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE) TS "
    "GROUP BY k, wend"
)

SUM_SQL = (
    "SELECT k, wend, SUM(v) AS total "
    "FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE) TS "
    "GROUP BY k, wend"
)

STATELESS_SQL = "SELECT k + 1 AS k1, v * 2 AS v2 FROM S WHERE v >= 1"

HOP_SQL = (
    "SELECT wstart, COUNT(*) AS n "
    "FROM Hop(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE, slide => INTERVAL '1' MINUTE) HS "
    "GROUP BY wstart"
)

# Expressions that codegen cannot emit inline — they run through the
# spliced closure fallback inside the generated loop.
FALLBACK_SQL = (
    "SELECT CAST(v AS STRING) AS vs, "
    "CASE WHEN v > 2 THEN 'hi' ELSE 'lo' END AS tag "
    "FROM S WHERE v % 2 = 0"
)

entries_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 2),
        st.integers(0, 50),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


def _build_events(entries):
    events = []
    ptime = 1000
    wm_seconds = 0
    for kind, key, secs, advance in entries:
        if advance:
            ptime += 100
        if kind == 3:
            wm_seconds = max(wm_seconds, secs)
            events.append(wm(ptime, t("8:00") + seconds(wm_seconds)))
        else:
            events.append(ins(ptime, (key, t("8:00") + seconds(secs), kind)))
    return events


def _run(events, sql, **config):
    engine = StreamEngine(config=ExecutionConfig(**config))
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    return engine.query(sql).run()


def _assert_identical(events, sql, **config):
    """Columnar on == columnar off, byte for byte, under ``config``."""
    row = _run(events, sql, columnar="off", **config)
    col = _run(events, sql, columnar="on", **config)
    assert col.changes == row.changes
    assert col.watermarks.as_pairs() == row.watermarks.as_pairs()
    assert col.late_dropped == row.late_dropped


# ---------------------------------------------------------------------------
# hypothesis: columnar == row-at-a-time, byte for byte
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    entries=entries_strategy,
    sql=st.sampled_from([STATELESS_SQL, TUMBLE_SQL, FALLBACK_SQL]),
    batch_size=st.sampled_from([1, 2, 7, 64]),
)
def test_columnar_identical_serial(entries, sql, batch_size):
    _assert_identical(_build_events(entries), sql, batch_size=batch_size)


@settings(max_examples=15, deadline=None)
@given(
    entries=entries_strategy,
    shards=st.sampled_from([1, 3]),
    two_phase=st.sampled_from(["off", "on"]),
    coalesce=st.booleans(),
)
def test_columnar_identical_sharded(entries, shards, two_phase, coalesce):
    _assert_identical(
        _build_events(entries),
        SUM_SQL,
        batch_size=7,
        parallelism=shards,
        backend="sync",
        two_phase=two_phase,
        coalesce_updates=coalesce,
    )


@settings(max_examples=10, deadline=None)
@given(entries=entries_strategy)
def test_columnar_identical_hop(entries):
    _assert_identical(_build_events(entries), HOP_SQL, batch_size=16)


def test_columnar_auto_follows_batch_size():
    events = _build_events([(0, 0, 5, True), (1, 1, 9, True), (3, 0, 20, False)])
    engine = StreamEngine(
        config=ExecutionConfig(batch_size=64, columnar="auto")
    )
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    flow = engine.query(STATELESS_SQL).dataflow()
    assert flow._columnar_active
    engine2 = StreamEngine(config=ExecutionConfig(columnar="auto"))
    engine2.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    assert not engine2.query(STATELESS_SQL).dataflow()._columnar_active


# ---------------------------------------------------------------------------
# codegen: fused pipelines, fallback splicing, build-time errors
# ---------------------------------------------------------------------------


def _int_input(i):
    return RexInput(i, type=SqlType.INT)


def _lit(value, sql_type=SqlType.INT):
    return RexLiteral(value, type=sql_type)


def _changes(rows):
    return [Change(ChangeKind.INSERT, tuple(row), 1000 + i)
            for i, row in enumerate(rows)]


def test_pipeline_codegen_matches_interpreter():
    steps = (
        ("filter", RexCall_gt(_int_input(0), _lit(2))),
        ("project", (RexCall_add(_int_input(0), _int_input(1)),)),
    )
    compiled = PipelineOperator(_two_int_schema(), 2, steps)
    codegen_was = codegen.ENABLED
    codegen.ENABLED = False
    try:
        interpreted = PipelineOperator(_two_int_schema(), 2, steps)
    finally:
        codegen.ENABLED = codegen_was
    batch = _changes([(1, 10), (3, 20), (5, 30), (None, 40)])
    assert compiled.on_batch(0, batch) == interpreted.on_batch(0, batch)
    cols = ColumnarBatch.from_changes(batch, 2)
    out = compiled.on_cols(0, cols)
    rows = out.to_changes() if isinstance(out, ColumnarBatch) else out
    assert rows == interpreted.on_batch(0, batch)


def test_case_and_cast_fall_back_to_closures():
    case = RexCase(
        whens=((RexCall_gt(_int_input(0), _lit(1)), _lit("hi", SqlType.STRING)),),
        else_=_lit("lo", SqlType.STRING),
        type=SqlType.STRING,
    )
    cast = RexCast(_int_input(1), type=SqlType.STRING)
    op = PipelineOperator(_two_int_schema(), 2, (("project", (case, cast)),))
    # The generated source splices closure fallbacks for both exprs.
    source = getattr(op._run_rows, "_codegen_source", "")
    assert "_fb" in source
    out = op.on_batch(0, _changes([(0, 7), (2, 8)]))
    assert [c.values for c in out] == [("lo", "7"), ("hi", "8")]
    cols_out = op.on_cols(0, ColumnarBatch.from_changes(_changes([(0, 7), (2, 8)]), 2))
    rows = cols_out.to_changes() if isinstance(cols_out, ColumnarBatch) else cols_out
    assert [c.values for c in rows] == [("lo", "7"), ("hi", "8")]


def test_current_time_errors_at_build_time():
    clock = RexCurrentTime(type=SqlType.TIMESTAMP)
    with pytest.raises(ExecutionError, match="CURRENT_TIME"):
        PipelineOperator(_two_int_schema(), 2, (("project", (clock,)),))


def test_sql_division_semantics_preserved():
    div = RexCall_div(_int_input(0), _int_input(1))
    op = PipelineOperator(_two_int_schema(), 2, (("project", (div,)),))
    out = op.on_batch(0, _changes([(7, 2), (-7, 2), (7, None)]))
    assert [c.values for c in out] == [(3,), (-3,), (None,)]
    with pytest.raises(ExecutionError, match="division by zero"):
        op.on_batch(0, _changes([(1, 0)]))


def test_columnar_batch_roundtrip_preserves_identity():
    batch = _changes([(1, 2), (3, 4)])
    cols = ColumnarBatch.from_changes(batch, 2)
    # The memoized row view hands back the very Change objects the
    # batch was built from — no reconstruction.
    assert all(a is b for a, b in zip(cols.to_changes(), batch))
    rebuilt = ColumnarBatch(cols.columns, cols.kinds, cols.ptimes)
    assert rebuilt.to_changes() == batch


def _two_int_schema():
    return Schema([int_col("a"), int_col("b")])


def RexCall_gt(a, b):
    from repro.plan.rex import RexCall

    return RexCall(">", (a, b), type=SqlType.BOOL)


def RexCall_add(a, b):
    from repro.plan.rex import RexCall

    return RexCall("+", (a, b), type=SqlType.INT)


def RexCall_div(a, b):
    from repro.plan.rex import RexCall

    return RexCall("/", (a, b), type=SqlType.INT)


# ---------------------------------------------------------------------------
# fault tolerance: columnar batches align with checkpoints
# ---------------------------------------------------------------------------


def test_columnar_crash_after_checkpoint_recovers_exactly(nexmark_small):
    """batch_size=64, columnar on, crash-after-checkpoint: recovery
    replays the same micro-batches through the same columnar pipelines
    and reproduces the fault-free serial output byte for byte."""
    serial = StreamEngine()
    nexmark_small.register_on(serial)
    baseline = serial.query(Q3_LOCAL_ITEM_SUGGESTION).dataflow().run()

    faulted = StreamEngine(
        config=ExecutionConfig(
            parallelism=3,
            backend="threads",
            batch_size=64,
            columnar="on",
            retry=RetryPolicy(max_restarts=3, checkpoint_interval=3),
            fault_plan="crash-after-checkpoint:shard=0,at=1",
        )
    )
    nexmark_small.register_on(faulted)
    result = faulted.query(Q3_LOCAL_ITEM_SUGGESTION).run()
    assert result.changes == baseline.changes
    assert result.watermarks.as_pairs() == baseline.watermarks.as_pairs()
    recovery = result.metrics.recovery
    assert recovery is not None and recovery.shard_restarts > 0


def test_columnar_checkpoint_restore_roundtrip():
    """Cut a checkpoint mid-stream on a columnar flow, rebuild from the
    structural recipe, restore, and finish: identical to an
    uninterrupted columnar run."""
    from repro.exec.executor import Dataflow

    events = _build_events(
        [(0, 0, 5, True), (1, 1, 9, False), (2, 0, 12, True),
         (3, 0, 20, True), (0, 2, 25, False), (1, 0, 30, True),
         (3, 1, 40, True)]
    )
    engine = StreamEngine(
        config=ExecutionConfig(batch_size=64, columnar="on")
    )
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    query = engine.query(TUMBLE_SQL)
    uninterrupted = query.dataflow().run()

    flow = query.dataflow()
    half = len(events) // 2
    for event in events[:half]:
        flow.process(event, "S")
    blob = flow.checkpoint()

    import pickle

    restored = Dataflow.from_structure(
        [("main", query.plan)],
        pickle.loads(blob),
        {"S": TimeVaryingRelation(KEYED_SCHEMA, events)},
        batch_size=64,
        columnar="on",
    )
    restored.restore(blob)
    for event in events[half:]:
        restored.process(event, "S")
    result = restored.finish()
    assert result.changes == uninterrupted.changes
    assert result.watermarks.as_pairs() == uninterrupted.watermarks.as_pairs()


# ---------------------------------------------------------------------------
# EXPLAIN and config surface
# ---------------------------------------------------------------------------


def test_physical_explain_annotates_columnar():
    engine = StreamEngine(
        config=ExecutionConfig(batch_size=64, columnar="auto")
    )
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, []))
    text = engine.query(STATELESS_SQL).explain(mode="physical")
    assert "[columnar]" in text
    assert "[fused: filter+project]" in text


def test_physical_explain_columnar_off():
    engine = StreamEngine()
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, []))
    text = engine.query(STATELESS_SQL).explain(mode="physical")
    assert "Columnar: off" in text


def test_columnar_config_validation():
    from repro.core.errors import ValidationError

    with pytest.raises(ValidationError, match="columnar"):
        ExecutionConfig(columnar="sideways")
    assert ExecutionConfig(columnar="on").columnar == "on"


def test_columnar_cli_flag():
    from repro.__main__ import build_config, build_parser

    parser = build_parser()
    args = parser.parse_args(["--columnar", "on"])
    assert build_config(args).columnar == "on"
