"""Service-mode residency: incremental feeding is replay-equivalent.

The load-bearing guarantee: a standing query fed event-by-event through
:meth:`SessionManager.ingest` produces a changelog byte-identical —
values, ``ptime``, change kind, ordering — to a one-shot ``run()``
over the same recorded events, on both the serial and the sharded
runtime.  Plus the session plumbing around it: catch-up, fan-out,
eviction, checkpoint/restore.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.service import StandingQueryService
from repro.service.subscriptions import SubscriptionRegistry

MINUTE = 60_000

SCHEMA = Schema([int_col("k"), timestamp_col("ts", event_time=True), int_col("v")])

KEYED_WINDOW_SUM = """
    SELECT k, wend, SUM(v) AS total
    FROM Tumble(data => TABLE(S),
                timecol => DESCRIPTOR(ts),
                dur => INTERVAL '2' MINUTE) TS
    GROUP BY k, wend
    EMIT STREAM
"""

WINDOWED_MAX = (
    "SELECT TB.wend, MAX(TB.price) maxPrice "
    "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' MINUTES) TB GROUP BY TB.wend EMIT STREAM"
)


@st.composite
def event_histories(draw):
    """A random keyed stream: rows with jittered event times + watermarks."""
    steps = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=-3, max_value=3),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=40,
        )
    )
    events = []
    ptime = 1_000_000
    wm_value = 0
    for is_row, a, b, c in steps:
        ptime += MINUTE // 4
        if is_row:
            events.append(ins(ptime, (a, max(0, wm_value + b * MINUTE), c)))
        else:
            wm_value += a * MINUTE
            events.append(wm(ptime, wm_value))
    return events


def oneshot_changes(events, sql, parallelism=1):
    eng = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend="sync")
    )
    eng.register_stream("S", TimeVaryingRelation(SCHEMA, events))
    return eng.query(sql).run().changes


def service_with_empty_source(config=None, schema=SCHEMA, name="S"):
    svc = StandingQueryService(config=config)
    svc.register_stream(name, TimeVaryingRelation(schema))
    return svc


class TestIncrementalEquivalence:
    def test_serial_matches_oneshot_paper_stream(self, bid_stream):
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        query = svc.submit("alice", WINDOWED_MAX)
        for event in bid_stream.events():
            svc.ingest(event, "Bid")
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        expected = eng.query(WINDOWED_MAX).run().changes
        assert query.flow.output_slice(0) == expected

    def test_sharded_matches_oneshot_paper_stream(self, bid_stream):
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        query = svc.submit(
            "alice", WINDOWED_MAX, config=ExecutionConfig(parallelism=3)
        )
        assert query.sharded
        for event in bid_stream.events():
            svc.ingest(event, "Bid")
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        assert query.flow.output_slice(0) == eng.query(WINDOWED_MAX).run().changes

    @settings(max_examples=25, deadline=None)
    @given(
        events=event_histories(),
        parallelism=st.sampled_from([1, 2, 4]),
    )
    def test_service_feeding_equals_oneshot(self, events, parallelism):
        """The acceptance property: serve-mode ingest == one-shot replay."""
        svc = service_with_empty_source(
            config=ExecutionConfig(parallelism=parallelism, backend="sync")
        )
        query = svc.submit("t", KEYED_WINDOW_SUM)
        assert query.sharded == (parallelism > 1)
        for event in events:
            svc.ingest(event, "S")
        assert query.flow.output_slice(0) == oneshot_changes(
            events, KEYED_WINDOW_SUM, parallelism
        )

    def test_unrelated_source_events_keep_equivalence(self, bid_stream):
        """Events of sources a query never scans still advance its clock."""
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        svc.register_stream("Other", TimeVaryingRelation(SCHEMA))
        query = svc.submit("t", WINDOWED_MAX)
        for i, event in enumerate(bid_stream.events()):
            svc.ingest(event, "Bid")
            if i == 3:
                svc.ingest(ins(event.ptime, (1, event.ptime, 5)), "Other")
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        assert query.flow.output_slice(0) == eng.query(WINDOWED_MAX).run().changes

    def test_late_registration_catches_up(self, bid_stream):
        """A query admitted mid-stream replays history before going live."""
        events = bid_stream.events()
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        for event in events[: len(events) // 2]:
            svc.ingest(event, "Bid")
        query = svc.submit("late", WINDOWED_MAX)
        for event in events[len(events) // 2 :]:
            svc.ingest(event, "Bid")
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        assert query.flow.output_slice(0) == eng.query(WINDOWED_MAX).run().changes

    def test_coalesce_config_flows_through(self, bid_stream):
        config = ExecutionConfig(coalesce_updates=True)
        svc = service_with_empty_source(
            config=config, schema=bid_stream.schema, name="Bid"
        )
        query = svc.submit("t", WINDOWED_MAX)
        for event in bid_stream.events():
            svc.ingest(event, "Bid")
        eng = StreamEngine(config=config)
        eng.register_stream("Bid", bid_stream)
        with pytest.warns(UserWarning):
            expected = eng.query(WINDOWED_MAX).run().changes
        assert query.flow.output_slice(0) == expected


class TestSubscriptions:
    def test_subscribers_see_only_live_deltas(self, bid_stream):
        events = bid_stream.events()
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        query = svc.submit("t", WINDOWED_MAX)
        for event in events[:6]:
            svc.ingest(event, "Bid")
        early_deltas = query.subscriptions.next_seq
        subscriber = svc.subscribe(query.query_id, "late-joiner")
        assert subscriber.cursor == early_deltas
        for event in events[6:]:
            svc.ingest(event, "Bid")
        taken = subscriber.take()
        assert [d.seq for d in taken] == list(
            range(early_deltas, query.subscriptions.next_seq)
        )
        assert subscriber.cursor == query.subscriptions.next_seq

    def test_delta_sequence_is_gap_free_and_changelog_aligned(self, bid_stream):
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        query = svc.submit("t", WINDOWED_MAX)
        subscriber = svc.subscribe(query.query_id, "s")
        for event in bid_stream.events():
            svc.ingest(event, "Bid")
        deltas = subscriber.take()
        assert [d.seq for d in deltas] == list(range(len(deltas)))
        assert [d.change for d in deltas] == query.flow.output_slice(0)

    def test_slow_consumer_is_evicted(self, bid_stream):
        svc = service_with_empty_source(
            config=ExecutionConfig(subscriber_capacity=2),
            schema=bid_stream.schema,
            name="Bid",
        )
        query = svc.submit("t", WINDOWED_MAX)
        slow = svc.subscribe(query.query_id, "slow")
        fast = svc.subscribe(query.query_id, "fast")
        for event in bid_stream.events():
            svc.ingest(event, "Bid")
            fast.take()  # drains every round; never evicted
        assert slow.evicted
        assert slow.depth == 0  # buffer released on eviction
        assert not fast.evicted
        assert query.subscriptions.evictions == 1
        assert query.subscriptions.live_count == 1

    def test_registry_publish_and_cursors_standalone(self):
        registry = SubscriptionRegistry(default_capacity=8)
        a = registry.subscribe("a")
        from repro.core.changelog import Change, ChangeKind

        changes = [Change(ChangeKind.INSERT, (i,), 1000 + i) for i in range(3)]
        registry.publish(changes)
        b = registry.subscribe("b")  # joins at the live edge
        assert b.cursor == 3
        assert [d.seq for d in a.take(2)] == [0, 1]
        assert a.cursor == 2
        assert [d.seq for d in a.take()] == [2]
        assert registry.delivered == 3


class TestDurability:
    def test_checkpoint_restore_resumes_byte_identical(
        self, bid_stream, tmp_path
    ):
        events = bid_stream.events()
        half = len(events) // 2
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        query = svc.submit("alice", WINDOWED_MAX)
        for event in events[:half]:
            svc.ingest(event, "Bid")
        svc.checkpoint(str(tmp_path))

        resumed = StandingQueryService()
        assert resumed.resume(str(tmp_path)) == 1
        restored = resumed.session.get(query.query_id)
        assert restored.tenant == "alice"
        assert resumed.session.source_offsets == {"bid": half}
        for event in events[half:]:
            resumed.ingest(event, "Bid")
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        assert restored.flow.output_slice(0) == (
            eng.query(WINDOWED_MAX).run().changes
        )

    def test_restore_preserves_delta_sequence(self, bid_stream, tmp_path):
        events = bid_stream.events()
        half = len(events) // 2
        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        query = svc.submit("t", WINDOWED_MAX)
        for event in events[:half]:
            svc.ingest(event, "Bid")
        seq_before = query.subscriptions.next_seq
        svc.checkpoint(str(tmp_path))

        resumed = StandingQueryService()
        resumed.resume(str(tmp_path))
        restored = resumed.session.get(query.query_id)
        subscriber = resumed.subscribe(query.query_id, "s")
        assert subscriber.cursor == seq_before
        for event in events[half:]:
            resumed.ingest(event, "Bid")
        # post-restore deltas continue the pre-crash numbering, gap-free
        assert [d.seq for d in subscriber.take()] == list(
            range(seq_before, restored.subscriptions.next_seq)
        )

    def test_restore_reapplies_current_policies(self, bid_stream, tmp_path):
        from repro.service import AdmissionError, TenantPolicy

        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        svc.submit("alice", WINDOWED_MAX)
        svc.checkpoint(str(tmp_path))

        locked = StandingQueryService(
            policies={
                "alice": TenantPolicy(
                    name="alice", allowed_tables=frozenset()
                )
            }
        )
        with pytest.raises(AdmissionError) as exc_info:
            locked.resume(str(tmp_path))
        assert exc_info.value.code == "acl_denied"

    def test_auto_checkpoint_on_interval(self, bid_stream, tmp_path):
        from repro.runtime.supervisor import RetryPolicy

        config = ExecutionConfig(
            retry=RetryPolicy(checkpoint_interval=4),
            checkpoint_dir=str(tmp_path),
        )
        svc = service_with_empty_source(
            config=config, schema=bid_stream.schema, name="Bid"
        )
        svc.submit("t", WINDOWED_MAX)
        for event in bid_stream.events():
            svc.ingest(event, "Bid")
        assert svc.session.checkpoints_taken == len(bid_stream.events()) // 4
        assert os.path.exists(tmp_path / "manifest.json")

    def test_checkpoint_without_directory_is_an_error(self, bid_stream):
        from repro.core.errors import ExecutionError

        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        with pytest.raises(ExecutionError):
            svc.checkpoint()


class TestRegistry:
    def test_explicit_id_collision_is_an_error(self, bid_stream):
        from repro.core.errors import ExecutionError

        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        svc.submit("t", WINDOWED_MAX, query_id="mine")
        with pytest.raises(ExecutionError):
            svc.submit("t", WINDOWED_MAX, query_id="mine")

    def test_withdraw_frees_quota(self, bid_stream):
        from repro.service import TenantPolicy

        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        svc.gateway.set_policy(
            TenantPolicy(name="small", max_standing_queries=1)
        )
        query = svc.submit("small", WINDOWED_MAX)
        assert svc.withdraw(query.query_id)
        svc.submit("small", WINDOWED_MAX)  # admitted again

    def test_ingest_to_unknown_source_is_an_error(self, bid_stream):
        from repro.core.errors import ExecutionError

        svc = service_with_empty_source(schema=bid_stream.schema, name="Bid")
        with pytest.raises(ExecutionError):
            svc.ingest(ins(1, (1, 1, 1)), "Ghost")
