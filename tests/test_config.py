"""The unified ExecutionConfig surface: layering, validation, shims, CLI.

One frozen :class:`repro.ExecutionConfig` is the only non-deprecated way
to configure execution, accepted at three layers with *call-site >
query > engine > defaults* precedence.  The old keyword arguments
(``parallelism=``, ``backend=``, ``telemetry=``, ``allowed_lateness=``,
``shards=``) keep working through shims that warn exactly once per
keyword per process — the suite otherwise runs with
``-W error::DeprecationWarning``, so these tests are the only place the
shims are allowed to fire.
"""

import dataclasses
import warnings

import pytest

import repro
import repro.config as repro_config
from repro import ExecutionConfig, FaultPlan, RetryPolicy, StreamEngine
from repro.__main__ import build_config, build_parser
from repro.config import EXECUTION_DEFAULTS
from repro.core.errors import ValidationError
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation, ins, wm

KEYED_SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

TUMBLE_SQL = (
    "SELECT k, wend, COUNT(*) AS n "
    "FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE) TS "
    "GROUP BY k, wend"
)


def keyed_engine(config=None, **kwargs):
    engine = StreamEngine(config=config, **kwargs)
    events = [
        ins(100, (1, t("8:00"), 10)),
        ins(200, (2, t("8:01"), 20)),
        wm(300, t("8:02")),
        ins(400, (1, t("8:03"), 30)),
        wm(500, t("8:10")),
    ]
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    return engine


@pytest.fixture(autouse=True)
def fresh_warning_registry():
    """Each test sees a pristine warn-once registry, then restores it."""
    saved = set(repro_config._WARNED)
    repro_config._WARNED.clear()
    yield
    repro_config._WARNED.clear()
    repro_config._WARNED.update(saved)


# ---------------------------------------------------------------------------
# the config object itself
# ---------------------------------------------------------------------------


class TestExecutionConfig:
    def test_unset_everywhere_resolves_to_defaults(self):
        resolved = ExecutionConfig().resolved()
        for name, value in EXECUTION_DEFAULTS.items():
            assert getattr(resolved, name) == value

    def test_merged_over_keeps_set_fields(self):
        base = ExecutionConfig(parallelism=4, backend="sync")
        layered = ExecutionConfig(backend="threads").merged_over(base)
        assert layered.parallelism == 4  # inherited
        assert layered.backend == "threads"  # overridden

    def test_merged_over_is_field_wise_not_all_or_nothing(self):
        base = ExecutionConfig(
            parallelism=2, allowed_lateness=500, backend="processes"
        )
        top = ExecutionConfig(allowed_lateness=0)
        # allowed_lateness=0 is a *set* value, not "unset"
        merged = top.merged_over(base)
        assert merged.allowed_lateness == 0
        assert merged.parallelism == 2
        assert merged.backend == "processes"

    def test_frozen_and_hashable(self):
        config = ExecutionConfig(parallelism=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.parallelism = 3
        assert hash(config) == hash(ExecutionConfig(parallelism=2))
        assert config == ExecutionConfig(parallelism=2)
        assert config != ExecutionConfig(parallelism=3)

    def test_fault_plan_spec_string_is_parsed_at_construction(self):
        config = ExecutionConfig(fault_plan="poison-row:shard=1,at=3")
        assert isinstance(config.fault_plan, FaultPlan)
        assert config.fault_plan.faults[0].shard == 1

    def test_validation_rejects_impossible_settings(self):
        with pytest.raises(ValidationError):
            ExecutionConfig(parallelism=0)
        with pytest.raises(ValidationError):
            ExecutionConfig(backend="fibers")
        with pytest.raises(ValidationError):
            ExecutionConfig(allowed_lateness=-1)
        with pytest.raises(ValidationError):
            ExecutionConfig(retry="3 times")
        with pytest.raises(ValidationError):
            ExecutionConfig(fault_plan=42)

    def test_unset_fields_pass_validation(self):
        ExecutionConfig().validate()  # all None: nothing to reject


# ---------------------------------------------------------------------------
# precedence: call-site > query > engine > defaults
# ---------------------------------------------------------------------------


class TestPrecedence:
    def test_engine_layer_fills_unset_query_fields(self):
        engine = keyed_engine(ExecutionConfig(parallelism=4, backend="sync"))
        query = engine.query(TUMBLE_SQL)
        effective = query._effective()
        assert effective.parallelism == 4
        assert effective.backend == "sync"
        assert effective.allowed_lateness == 0  # library default

    def test_query_layer_overrides_engine(self):
        engine = keyed_engine(ExecutionConfig(parallelism=4))
        query = engine.query(TUMBLE_SQL, ExecutionConfig(parallelism=2))
        assert query._effective().parallelism == 2
        # unrelated fields still come from the engine/defaults
        assert query._effective().backend == "threads"

    def test_call_site_overrides_query_and_engine(self):
        engine = keyed_engine(ExecutionConfig(parallelism=4, backend="sync"))
        query = engine.query(TUMBLE_SQL, ExecutionConfig(parallelism=2))
        effective = query._effective(ExecutionConfig(parallelism=1))
        assert effective.parallelism == 1
        assert effective.backend == "sync"  # engine layer survives

    def test_allowed_lateness_resolves_through_the_chain(self):
        engine = keyed_engine(ExecutionConfig(allowed_lateness=120_000))
        assert engine.query(TUMBLE_SQL).allowed_lateness == 120_000
        query = engine.query(TUMBLE_SQL, ExecutionConfig(allowed_lateness=0))
        assert query.allowed_lateness == 0

    def test_explain_reports_the_effective_runtime(self):
        engine = keyed_engine(ExecutionConfig(parallelism=1))
        query = engine.query(
            TUMBLE_SQL, ExecutionConfig(parallelism=3, backend="sync")
        )
        note = query.explain()
        assert "sharded(3)" in note
        assert "[sync]" in note

    def test_run_results_are_cached_per_effective_config(self):
        engine = keyed_engine(ExecutionConfig(backend="sync"))
        query = engine.query(TUMBLE_SQL)
        first = query.run()
        assert query.run() is first  # same config: cached
        override = query.run(config=ExecutionConfig(parallelism=2))
        assert override is not first
        assert override.changes == first.changes  # sharded == serial

    def test_all_layers_produce_identical_results(self):
        base = keyed_engine(ExecutionConfig(backend="sync")).query(TUMBLE_SQL).run()
        via_engine = keyed_engine(
            ExecutionConfig(parallelism=2, backend="sync")
        ).query(TUMBLE_SQL).run()
        via_query = keyed_engine().query(
            TUMBLE_SQL, ExecutionConfig(parallelism=2, backend="sync")
        ).run()
        via_call = keyed_engine().query(TUMBLE_SQL).run(
            config=ExecutionConfig(parallelism=2, backend="sync")
        )
        for result in (via_engine, via_query, via_call):
            assert result.changes == base.changes
            assert result.watermarks.as_pairs() == base.watermarks.as_pairs()

    def test_engine_stores_a_fully_resolved_config(self):
        engine = StreamEngine(config=ExecutionConfig(parallelism=2))
        assert engine.config.backend == "threads"
        assert engine.config.retry == RetryPolicy()
        assert engine.parallelism == 2
        assert engine.backend == "threads"

    def test_config_must_be_an_execution_config(self):
        with pytest.raises(ValidationError):
            StreamEngine(config={"parallelism": 2})
        engine = keyed_engine()
        with pytest.raises(ValidationError):
            engine.query(TUMBLE_SQL).run(config={"parallelism": 2})


# ---------------------------------------------------------------------------
# deprecated keyword shims: warn exactly once per keyword per process
# ---------------------------------------------------------------------------


class TestDeprecatedKwargs:
    def test_engine_kwargs_warn_and_apply(self):
        with pytest.warns(DeprecationWarning, match="parallelism"):
            engine = StreamEngine(parallelism=2)
        assert engine.parallelism == 2

    def test_each_keyword_warns_exactly_once(self):
        with pytest.warns(DeprecationWarning):
            StreamEngine(parallelism=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            StreamEngine(parallelism=3)  # same keyword: silent now
        assert caught == []

    def test_distinct_keywords_warn_independently(self):
        with pytest.warns(DeprecationWarning, match="parallelism"):
            StreamEngine(parallelism=2)
        with pytest.warns(DeprecationWarning, match="backend"):
            StreamEngine(backend="sync")

    def test_deprecated_kwargs_still_validate(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValidationError):
                StreamEngine(parallelism=0)

    def test_kwargs_override_the_explicit_config(self):
        with pytest.warns(DeprecationWarning):
            engine = StreamEngine(
                config=ExecutionConfig(parallelism=4), parallelism=2
            )
        assert engine.parallelism == 2

    def test_query_allowed_lateness_kwarg(self):
        engine = keyed_engine()
        with pytest.warns(DeprecationWarning, match="allowed_lateness"):
            query = engine.query(TUMBLE_SQL, allowed_lateness=60_000)
        assert query.allowed_lateness == 60_000

    def test_sharded_dataflow_shards_kwarg(self):
        engine = keyed_engine()
        query = engine.query(TUMBLE_SQL)
        with pytest.warns(DeprecationWarning, match="shards"):
            flow = query.sharded_dataflow(shards=3)
        assert flow.shard_count == 3


# ---------------------------------------------------------------------------
# the CLI builds the same config object
# ---------------------------------------------------------------------------


class TestCli:
    def parse(self, *argv):
        return build_config(build_parser().parse_args(list(argv)))

    def test_no_flags_build_the_all_unset_config(self):
        assert self.parse() == ExecutionConfig()

    def test_flags_map_onto_config_fields(self):
        config = self.parse(
            "--parallelism", "4",
            "--backend", "processes",
            "--telemetry", "jsonl:/tmp/events.jsonl",
            "--allowed-lateness", "5000",
        )
        assert config.parallelism == 4
        assert config.backend == "processes"
        assert config.telemetry == "jsonl:/tmp/events.jsonl"
        assert config.allowed_lateness == 5000
        assert config.retry is None  # no retry flag given: inherit

    def test_retry_flags_fill_unset_fields_from_policy_defaults(self):
        config = self.parse("--max-restarts", "5")
        assert config.retry == RetryPolicy(max_restarts=5)
        config = self.parse(
            "--checkpoint-interval", "50", "--backoff-base-ms", "10"
        )
        assert config.retry.checkpoint_interval == 50
        assert config.retry.backoff_base_ms == 10
        assert config.retry.max_restarts == RetryPolicy().max_restarts

    def test_fault_plan_flag_parses_to_a_plan(self):
        config = self.parse("--fault-plan", "crash-after-checkpoint:shard=1")
        assert isinstance(config.fault_plan, FaultPlan)
        assert config.fault_plan.faults[0].kind == "crash-after-checkpoint"

    def test_bad_flag_values_raise_validation_errors(self):
        with pytest.raises(ValidationError):
            self.parse("--backend", "fibers")
        from repro.core.errors import ExecutionError

        with pytest.raises(ExecutionError):
            self.parse("--fault-plan", "meteor-strike")

    def test_help_names_every_config_field(self):
        """``python -m repro --help`` must agree with docs/API.md."""
        text = build_parser().format_help()
        for flag in (
            "--parallelism", "--backend", "--telemetry", "--allowed-lateness",
            "--max-restarts", "--backoff-base-ms", "--checkpoint-interval",
            "--fault-plan",
        ):
            assert flag in text
        assert "ExecutionConfig" in text


# ---------------------------------------------------------------------------
# the exported surface
# ---------------------------------------------------------------------------


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_config_surface_is_exported(self):
        for name in (
            "ExecutionConfig", "RetryPolicy", "FaultPlan", "FaultSpec",
            "RecoveryStats", "StreamEngine",
        ):
            assert name in repro.__all__
