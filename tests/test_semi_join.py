"""Tests for [NOT] IN (SELECT ...) semi/anti joins."""

import pytest

from repro import StreamEngine
from repro.core.errors import ValidationError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, t
from repro.core.tvr import TimeVaryingRelation

BID = Schema(
    [
        timestamp_col("bidtime", event_time=True),
        int_col("auction"),
        int_col("price"),
    ]
)
HOT = Schema([int_col("id")])


@pytest.fixture
def engine():
    eng = StreamEngine()
    eng.register_table(
        "Bid",
        BID,
        [
            (t("9:00"), 1, 10),
            (t("9:01"), 2, 20),
            (t("9:02"), 3, 30),
            (t("9:03"), 1, 40),
        ],
    )
    eng.register_table("Hot", HOT, [(1,), (3,)])
    return eng


class TestSemantics:
    def test_in_subquery(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid WHERE auction IN (SELECT id FROM Hot)"
        ).table()
        assert sorted(rel.tuples) == [(10,), (30,), (40,)]

    def test_not_in_subquery(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid WHERE auction NOT IN (SELECT id FROM Hot)"
        ).table()
        assert rel.tuples == [(20,)]

    def test_combined_with_plain_predicates(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid WHERE auction IN (SELECT id FROM Hot) "
            "AND price > 15"
        ).table()
        assert sorted(rel.tuples) == [(30,), (40,)]

    def test_subquery_with_own_where(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid "
            "WHERE auction IN (SELECT id FROM Hot WHERE id > 2)"
        ).table()
        assert rel.tuples == [(30,)]

    def test_expression_probe(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid WHERE auction + 0 IN (SELECT id FROM Hot)"
        ).table()
        assert sorted(rel.tuples) == [(10,), (30,), (40,)]

    def test_null_probe_is_filtered(self):
        eng = StreamEngine()
        eng.register_table("L", Schema([int_col("v")]), [(None,), (1,)])
        eng.register_table("R", Schema([int_col("w")]), [(1,)])
        rel = eng.query("SELECT v FROM L WHERE v IN (SELECT w FROM R)").table()
        assert rel.tuples == [(1,)]
        # NULL NOT IN (...) is unknown too
        rel = eng.query(
            "SELECT v FROM L WHERE v NOT IN (SELECT w FROM R)"
        ).table()
        assert rel.tuples == []


class TestStreaming:
    def test_left_rows_flip_with_right_changes(self):
        left = TimeVaryingRelation(BID)
        right = TimeVaryingRelation(HOT)
        left.insert(10, (t("9:00"), 7, 99))
        right.insert(20, (7,))         # bid 7 becomes hot
        right.retract(30, (7,))        # ...and cools down again
        eng = StreamEngine()
        eng.register_stream("Bid", left)
        eng.register_stream("Hot", right)
        out = eng.query(
            "SELECT price FROM Bid WHERE auction IN (SELECT id FROM Hot) "
            "EMIT STREAM"
        ).stream()
        assert [(c.undo, c.ptime) for c in out] == [
            (False, 20),
            (True, 30),
        ]

    def test_anti_join_streaming(self):
        left = TimeVaryingRelation(BID)
        right = TimeVaryingRelation(HOT)
        left.insert(10, (t("9:00"), 7, 99))
        right.insert(20, (7,))
        eng = StreamEngine()
        eng.register_stream("Bid", left)
        eng.register_stream("Hot", right)
        out = eng.query(
            "SELECT price FROM Bid WHERE auction NOT IN (SELECT id FROM Hot) "
            "EMIT STREAM"
        ).stream()
        # visible immediately, withdrawn when the match arrives
        assert [(c.undo, c.ptime) for c in out] == [
            (False, 10),
            (True, 20),
        ]

    def test_schema_and_alignment_pass_through(self, engine):
        query = engine.query(
            "SELECT bidtime, price FROM Bid "
            "WHERE auction IN (SELECT id FROM Hot)"
        )
        assert query.schema.column("bidtime").event_time


class TestExists:
    def test_exists_keeps_all_when_nonempty(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid WHERE EXISTS (SELECT id FROM Hot)"
        ).table()
        assert len(rel) == 4

    def test_exists_with_filter(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid "
            "WHERE EXISTS (SELECT id FROM Hot WHERE id > 99)"
        ).table()
        assert rel.tuples == []

    def test_not_exists(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid "
            "WHERE NOT EXISTS (SELECT id FROM Hot WHERE id > 99)"
        ).table()
        assert len(rel) == 4

    def test_exists_combined_with_predicate(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid "
            "WHERE EXISTS (SELECT id FROM Hot) AND price > 25"
        ).table()
        assert sorted(rel.tuples) == [(30,), (40,)]

    def test_exists_under_or_rejected(self, engine):
        with pytest.raises(ValidationError, match="top-level"):
            engine.query(
                "SELECT price FROM Bid "
                "WHERE price > 1 OR EXISTS (SELECT id FROM Hot)"
            )


class TestScalarSubqueryEquality:
    def test_equals_global_aggregate(self, engine):
        """The CQL Listing-1 shape: price = (SELECT MAX(price) ...)."""
        rel = engine.query(
            "SELECT price FROM Bid WHERE price = (SELECT MAX(price) FROM Bid)"
        ).table()
        assert rel.tuples == [(40,)]

    def test_reversed_operands(self, engine):
        rel = engine.query(
            "SELECT price FROM Bid "
            "WHERE (SELECT MIN(price) FROM Bid) = price"
        ).table()
        assert rel.tuples == [(10,)]

    def test_streaming_updates_as_max_moves(self):
        left = TimeVaryingRelation(BID)
        left.insert(10, (t("9:00"), 1, 5))
        left.insert(20, (t("9:01"), 2, 9))
        eng = StreamEngine()
        eng.register_stream("Bid", left)
        out = eng.query(
            "SELECT price FROM Bid "
            "WHERE price = (SELECT MAX(price) FROM Bid) EMIT STREAM"
        ).stream()
        # 5 is the max, then 9 displaces it
        assert [(c.values[0], c.undo) for c in out] == [
            (5, False),
            (5, True),
            (9, False),
        ]


class TestValidation:
    def test_multi_column_subquery_rejected(self, engine):
        from repro.core.errors import PlanError

        with pytest.raises((ValidationError, PlanError), match="single-column"):
            engine.query(
                "SELECT price FROM Bid "
                "WHERE auction IN (SELECT id, id FROM Hot)"
            )

    def test_in_subquery_under_or_rejected(self, engine):
        with pytest.raises(ValidationError, match="top-level"):
            engine.query(
                "SELECT price FROM Bid WHERE price > 100 "
                "OR auction IN (SELECT id FROM Hot)"
            )
