"""Micro-batched execution: byte-identity, compaction, faults, config.

The batching scheduler's contract (docs/RUNTIME.md section 7): at any
``batch_size`` the default-mode changelog is *byte-identical* — values,
``ptime``, ordering, watermark steps — to per-change execution, because
every operator's batch output is the ordered concatenation of its
per-change outputs and batches never span an instant, a source, or a
watermark event.  ``coalesce_updates=True`` deliberately gives that
identity up and promises only per-instant snapshot equivalence, with
the dropped churn accounted in ``changes_coalesced``.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.config as repro_config
from repro import ExecutionConfig, RetryPolicy, StreamEngine
from repro.__main__ import build_config, build_parser
from repro.core.changelog import Change, ChangeKind, compact_intra_instant
from repro.core.errors import ExecutionError, ValidationError
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import seconds, t
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.exec.executor import Dataflow
from repro.nexmark import NexmarkConfig, generate, paper_bid_stream
from repro.nexmark.queries import Q3_LOCAL_ITEM_SUGGESTION, q7_paper

KEYED_SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

TUMBLE_SQL = (
    "SELECT k, wend, COUNT(*) AS n "
    "FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE) TS "
    "GROUP BY k, wend"
)

STATELESS_SQL = "SELECT k + 1 AS k1, v FROM S WHERE v >= 1"

JOIN_SQL = "SELECT S.k, S.v, R.v AS rv FROM S JOIN R ON S.k = R.k"


@pytest.fixture(autouse=True)
def fresh_warning_registry():
    """Each test sees a pristine warn-once registry, then restores it."""
    saved = set(repro_config._WARNED)
    repro_config._WARNED.clear()
    yield
    repro_config._WARNED.clear()
    repro_config._WARNED.update(saved)


# ---------------------------------------------------------------------------
# hypothesis: batched == per-change, byte for byte
# ---------------------------------------------------------------------------

# Each entry: (kind 0-2 = row / 3 = watermark, key, event seconds,
# advance-ptime-first?).  Not advancing ptime yields same-instant runs —
# the case batching actually groups; watermarks mid-run split batches;
# event times at or before the watermark exercise the late-drop path.
entries_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 2),
        st.integers(0, 50),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


def _build_events(entries):
    events = []
    ptime = 1000
    wm_seconds = 0
    for kind, key, secs, advance in entries:
        if advance:
            ptime += 100
        if kind == 3:
            wm_seconds = max(wm_seconds, secs)
            events.append(wm(ptime, t("8:00") + seconds(wm_seconds)))
        else:
            events.append(ins(ptime, (key, t("8:00") + seconds(secs), kind)))
    return events


def _engine(events, batch_size, other_events=None):
    engine = StreamEngine(config=ExecutionConfig(batch_size=batch_size))
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    if other_events is not None:
        engine.register_stream(
            "R", TimeVaryingRelation(KEYED_SCHEMA, other_events)
        )
    return engine


def _assert_all_batch_sizes_identical(sql, events, other_events=None):
    baseline = _engine(events, 1, other_events).query(sql).dataflow().run()
    for batch_size in (2, 7, 64):
        result = (
            _engine(events, batch_size, other_events).query(sql).dataflow().run()
        )
        assert result.changes == baseline.changes, f"batch_size={batch_size}"
        assert result.watermarks.as_pairs() == baseline.watermarks.as_pairs()
        assert result.late_dropped == baseline.late_dropped


@settings(max_examples=30, deadline=None)
@given(entries=entries_strategy)
def test_batched_stateless_identical(entries):
    _assert_all_batch_sizes_identical(STATELESS_SQL, _build_events(entries))


@settings(max_examples=30, deadline=None)
@given(entries=entries_strategy)
def test_batched_tumble_aggregate_identical(entries):
    _assert_all_batch_sizes_identical(TUMBLE_SQL, _build_events(entries))


@settings(max_examples=20, deadline=None)
@given(entries=entries_strategy, other=entries_strategy)
def test_batched_join_identical(entries, other):
    _assert_all_batch_sizes_identical(
        JOIN_SQL, _build_events(entries), _build_events(other)
    )


def test_batched_multi_leaf_source_identical():
    """Q7 scans Bid twice; such sources are excluded from batching
    (``batchable_source``) and the output must still match exactly."""
    def run(batch_size):
        engine = StreamEngine(config=ExecutionConfig(batch_size=batch_size))
        engine.register_stream("Bid", paper_bid_stream())
        flow = engine.query(q7_paper()).dataflow()
        assert not flow.batchable_source("Bid")
        return flow.run()

    baseline, batched = run(1), run(64)
    assert batched.changes == baseline.changes
    assert batched.watermarks.as_pairs() == baseline.watermarks.as_pairs()


@pytest.mark.parametrize("backend", ["threads", "sync"])
def test_batched_sharded_identical(nexmark_small, backend):
    serial = StreamEngine()
    nexmark_small.register_on(serial)
    baseline = serial.query(Q3_LOCAL_ITEM_SUGGESTION).dataflow().run()

    sharded = StreamEngine(
        config=ExecutionConfig(parallelism=4, backend=backend, batch_size=64)
    )
    nexmark_small.register_on(sharded)
    query = sharded.query(Q3_LOCAL_ITEM_SUGGESTION)
    assert query.partition_decision().partitionable
    result = query.run()
    assert result.changes == baseline.changes
    assert result.watermarks.as_pairs() == baseline.watermarks.as_pairs()


# ---------------------------------------------------------------------------
# compaction: snapshot-equivalent, never byte-equivalent by accident
# ---------------------------------------------------------------------------


def _c(kind, values, ptime):
    return Change(kind, values, ptime)


class TestCompactIntraInstant:
    def test_cancels_adjacent_opposites(self):
        insert, retract = ChangeKind.INSERT, ChangeKind.RETRACT
        changes = [
            _c(insert, (1,), 100),
            _c(retract, (1,), 100),
            _c(insert, (2,), 100),
        ]
        kept, dropped = compact_intra_instant(changes)
        assert dropped == 2
        assert kept == [_c(insert, (2,), 100)]

    def test_cancellation_is_bracketed_not_global(self):
        """An insert cancels against the *most recent* opposite change
        of the same row, preserving relative order of survivors."""
        insert, retract = ChangeKind.INSERT, ChangeKind.RETRACT
        changes = [
            _c(insert, (1,), 100),
            _c(insert, (1,), 100),
            _c(retract, (1,), 100),
        ]
        kept, dropped = compact_intra_instant(changes)
        assert dropped == 2
        assert kept == [_c(insert, (1,), 100)]

    def test_distinct_ptimes_never_cancel(self):
        insert, retract = ChangeKind.INSERT, ChangeKind.RETRACT
        changes = [_c(insert, (1,), 100), _c(retract, (1,), 200)]
        kept, dropped = compact_intra_instant(changes)
        assert dropped == 0
        assert kept == changes

    def test_full_cancellation_empties_the_batch(self):
        insert, retract = ChangeKind.INSERT, ChangeKind.RETRACT
        changes = [_c(insert, (1,), 100), _c(retract, (1,), 100)]
        kept, dropped = compact_intra_instant(changes)
        assert kept == [] and dropped == 2


def _bursty_nexmark():
    return generate(
        NexmarkConfig(num_events=600, seed=7, events_per_instant=16)
    )


WEND_COUNT_SQL = (
    "SELECT TB.wend, COUNT(*) AS bids "
    "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' SECONDS) TB "
    "GROUP BY TB.wend"
)


def test_coalesce_is_snapshot_equivalent_per_instant():
    streams = _bursty_nexmark()

    def run(coalesce):
        engine = StreamEngine(
            config=ExecutionConfig(batch_size=64, coalesce_updates=coalesce)
        )
        streams.register_on(engine)
        flow = engine.query(WEND_COUNT_SQL).dataflow()
        return flow.run(), flow

    baseline, _ = run(False)
    coalesced, flow = run(True)
    assert flow.changes_coalesced() > 0
    assert coalesced.metrics.totals["changes_coalesced"] > 0
    assert len(coalesced.changes) < len(baseline.changes)
    instants = sorted(
        {c.ptime for c in baseline.changes}
        | {c.ptime for c in coalesced.changes}
    )
    for at in instants:
        assert baseline.snapshot(at) == coalesced.snapshot(at)


def test_watch_dashboard_reports_coalesced_changes():
    """The shell's \\watch replay goes through the same run iterator as
    Dataflow.run(), so coalesce_updates fires and the frame shows the
    coalesce line."""
    from repro.nexmark.queries import register_udfs
    from repro.shell import Shell

    streams = _bursty_nexmark()
    engine = StreamEngine(
        config=ExecutionConfig(batch_size=64, coalesce_updates=True)
    )
    streams.register_on(engine)
    register_udfs(engine)
    frame = Shell(engine).feed(f"\\watch {WEND_COUNT_SQL};")
    assert "coalesce" in frame and "compacted away" in frame


def test_coalesce_default_off_is_byte_identical():
    """coalesce_updates defaults to False: nothing is compacted and the
    counter stays zero."""
    streams = _bursty_nexmark()
    engine = StreamEngine(config=ExecutionConfig(batch_size=64))
    streams.register_on(engine)
    flow = engine.query(WEND_COUNT_SQL).dataflow()
    flow.run()
    assert flow.changes_coalesced() == 0


# ---------------------------------------------------------------------------
# fault tolerance: batch boundaries align with checkpoints
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_batched_crash_after_checkpoint_recovers_exactly(
    nexmark_small, backend
):
    """batch_size=64 under a crash-after-checkpoint plan: checkpoints
    are only cut at batch boundaries, so replay re-forms the same
    batches and dedup-by-seq reproduces the fault-free serial output."""
    serial = StreamEngine()
    nexmark_small.register_on(serial)
    baseline = serial.query(Q3_LOCAL_ITEM_SUGGESTION).dataflow().run()

    faulted_engine = StreamEngine(
        config=ExecutionConfig(
            parallelism=3,
            backend=backend,
            batch_size=64,
            retry=RetryPolicy(max_restarts=3, checkpoint_interval=3),
            fault_plan="crash-after-checkpoint:shard=0,at=1",
        )
    )
    nexmark_small.register_on(faulted_engine)
    result = faulted_engine.query(Q3_LOCAL_ITEM_SUGGESTION).run()
    assert result.changes == baseline.changes
    assert result.watermarks.as_pairs() == baseline.watermarks.as_pairs()
    recovery = result.metrics.recovery
    assert recovery is not None and recovery.shard_restarts > 0


# ---------------------------------------------------------------------------
# config surface: validation, warning, CLI
# ---------------------------------------------------------------------------


def test_batch_size_zero_rejected_by_config():
    with pytest.raises(ValidationError, match="batch_size"):
        ExecutionConfig(batch_size=0).validate()
    with pytest.raises(ValidationError, match="batch_size"):
        ExecutionConfig(batch_size=-3).validate()
    ExecutionConfig(batch_size=1).validate()


def test_batch_size_zero_rejected_by_dataflow(engine):
    plan = engine.query("SELECT price FROM Bid").plan
    with pytest.raises(ExecutionError, match="batch_size"):
        Dataflow(plan, engine._sources, batch_size=0)


def test_coalesce_emit_stream_warns_once(engine):
    eng = StreamEngine(config=ExecutionConfig(coalesce_updates=True))
    eng.register_stream("Bid", paper_bid_stream())
    sql = "SELECT price, item FROM Bid EMIT STREAM"
    with pytest.warns(UserWarning, match="coalesce_updates"):
        eng.query(sql).dataflow()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        eng.query(sql).dataflow()  # second time: registry suppresses it


def test_coalesce_without_emit_stream_is_silent():
    eng = StreamEngine(config=ExecutionConfig(coalesce_updates=True))
    eng.register_stream("Bid", paper_bid_stream())
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        eng.query("SELECT price, item FROM Bid").dataflow()


def test_cli_flags_map_to_config():
    args = build_parser().parse_args(["--batch-size", "64", "--coalesce-updates"])
    config = build_config(args)
    assert config.batch_size == 64
    assert config.coalesce_updates is True

    defaults = build_config(build_parser().parse_args([]))
    assert defaults.batch_size is None  # inherit EXECUTION_DEFAULTS
    assert defaults.coalesce_updates is None
