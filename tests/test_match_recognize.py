"""Tests for MATCH_RECOGNIZE (SQL:2016 row pattern matching, §6.1)."""

import pytest

from repro import StreamEngine
from repro.core.errors import ExecutionError, ValidationError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, t
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema(
    [
        string_col("ticker"),
        timestamp_col("ts", event_time=True),
        int_col("price"),
    ]
)

# The classic V-shape query: a strictly falling run followed by a
# strictly rising run.
V_SHAPE = """
SELECT *
FROM Ticks MATCH_RECOGNIZE (
  PARTITION BY ticker
  ORDER BY ts
  MEASURES
    FIRST(DOWN.price) AS top,
    LAST(DOWN.price)  AS bottom,
    LAST(UP.price)    AS recovered,
    COUNT(DOWN.price) AS fall_len
  ONE ROW PER MATCH
  AFTER MATCH SKIP PAST LAST ROW
  PATTERN ( DOWN DOWN+ UP+ )
  DEFINE
    DOWN AS price < 100,
    UP   AS price >= 100
)
"""


def build(rows, wm=None, in_order_ptime=True):
    """rows: (ticker, event_ts, price); arrival order = list order."""
    tvr = TimeVaryingRelation(SCHEMA)
    for i, (ticker, ts, price) in enumerate(rows):
        tvr.insert(1000 + i, (ticker, ts, price))
    tvr.advance_watermark(5000, wm if wm is not None else MAX_TIMESTAMP)
    engine = StreamEngine()
    engine.register_stream("Ticks", tvr)
    return engine


class TestBasicMatching:
    def test_v_shape_found(self):
        engine = build(
            [
                ("A", t("9:00"), 120),
                ("A", t("9:01"), 90),
                ("A", t("9:02"), 80),
                ("A", t("9:03"), 105),
                ("A", t("9:04"), 110),
            ]
        )
        rel = engine.query(V_SHAPE).table()
        assert rel.tuples == [("A", 90, 80, 110, 2)]

    def test_no_match_when_pattern_absent(self):
        engine = build([("A", t("9:00"), 120), ("A", t("9:01"), 130)])
        assert engine.query(V_SHAPE).table().tuples == []

    def test_partitions_are_independent(self):
        engine = build(
            [
                ("A", t("9:00"), 90),
                ("B", t("9:00"), 150),
                ("A", t("9:01"), 80),
                ("B", t("9:01"), 80),  # B has only one DOWN: no match
                ("A", t("9:02"), 100),
                ("B", t("9:02"), 120),
            ]
        )
        rel = engine.query(V_SHAPE).table()
        assert [r[0] for r in rel.tuples] == ["A"]

    def test_multiple_matches_skip_past_last_row(self):
        rows = []
        base = t("9:00")
        for cycle in range(3):
            offset = cycle * 4
            rows += [
                ("A", base + (offset + 0) * 60_000, 90),
                ("A", base + (offset + 1) * 60_000, 80),
                ("A", base + (offset + 2) * 60_000, 100),
                ("A", base + (offset + 3) * 60_000, 200),
            ]
        engine = build(rows)
        rel = engine.query(V_SHAPE).table()
        assert len(rel) == 3

    def test_greedy_quantifier_takes_longest_run(self):
        engine = build(
            [
                ("A", t("9:00"), 95),
                ("A", t("9:01"), 90),
                ("A", t("9:02"), 85),
                ("A", t("9:03"), 80),
                ("A", t("9:04"), 100),
            ]
        )
        rel = engine.query(V_SHAPE).table()
        assert rel.tuples == [("A", 95, 80, 100, 4)]

    def test_optional_quantifier(self):
        sql = """
        SELECT * FROM Ticks MATCH_RECOGNIZE (
          PARTITION BY ticker ORDER BY ts
          MEASURES A.price AS a, COUNT(B.price) AS b_count, C.price AS c
          PATTERN ( A B? C )
          DEFINE A AS price = 1, B AS price = 2, C AS price = 3
        )
        """
        engine = build(
            [
                ("X", t("9:00"), 1),
                ("X", t("9:01"), 3),  # A C with B absent
                ("Y", t("9:00"), 1),
                ("Y", t("9:01"), 2),
                ("Y", t("9:02"), 3),  # A B C
            ]
        )
        rel = engine.query(sql).table().sorted(["ticker"])
        assert rel.tuples == [("X", 1, 0, 3), ("Y", 1, 1, 3)]

    def test_undefined_symbol_matches_any_row(self):
        sql = """
        SELECT * FROM Ticks MATCH_RECOGNIZE (
          PARTITION BY ticker ORDER BY ts
          MEASURES COUNT(ANYROW.price) AS n
          PATTERN ( SPIKE ANYROW )
          DEFINE SPIKE AS price > 100
        )
        """
        engine = build(
            [("A", t("9:00"), 150), ("A", t("9:01"), 7)]
        )
        assert engine.query(sql).table().tuples == [("A", 1)]

    def test_skip_to_next_row_overlaps(self):
        sql = """
        SELECT * FROM Ticks MATCH_RECOGNIZE (
          PARTITION BY ticker ORDER BY ts
          MEASURES FIRST(HI.price) AS first_hi, COUNT(HI.price) AS n
          AFTER MATCH SKIP TO NEXT ROW
          PATTERN ( HI HI )
          DEFINE HI AS price > 100
        )
        """
        engine = build(
            [
                ("A", t("9:00"), 110),
                ("A", t("9:01"), 120),
                ("A", t("9:02"), 130),
            ]
        )
        rel = engine.query(sql).table()
        assert len(rel) == 2  # (110,120) and (120,130)


class TestEventTimeSequencing:
    def test_out_of_order_arrival_same_matches(self):
        in_order = [
            ("A", t("9:00"), 120),
            ("A", t("9:01"), 90),
            ("A", t("9:02"), 80),
            ("A", t("9:03"), 105),
        ]
        shuffled = [in_order[2], in_order[0], in_order[3], in_order[1]]
        rel_a = build(in_order).query(V_SHAPE).table()
        rel_b = build(shuffled).query(V_SHAPE).table()
        assert rel_a == rel_b

    def test_matching_waits_for_watermark(self):
        rows = [
            ("A", t("9:00"), 120),
            ("A", t("9:01"), 90),
            ("A", t("9:02"), 80),
            ("A", t("9:03"), 105),
        ]
        # watermark only reaches 9:02: the UP row is not yet stable and
        # the falling run could still grow — nothing may be emitted
        engine = build(rows, wm=t("9:02"))
        assert engine.query(V_SHAPE).table().tuples == []

    def test_boundary_match_deferred_until_complete(self):
        # the greedy UP+ ends exactly at the watermark: a longer match
        # could still arrive, so emission waits for completeness
        rows = [
            ("A", t("9:00"), 90),
            ("A", t("9:01"), 80),
            ("A", t("9:02"), 105),
        ]
        engine = build(rows, wm=t("9:02"))
        assert engine.query(V_SHAPE).table().tuples == []
        complete = build(rows)  # watermark at +inf
        assert complete.query(V_SHAPE).table().tuples == [("A", 90, 80, 105, 2)]

    def test_closed_pattern_emits_at_boundary(self):
        """A pattern ending in a plain element cannot extend: it emits
        as soon as its rows are stable, without waiting for input end."""
        sql = """
        SELECT * FROM Ticks MATCH_RECOGNIZE (
          PARTITION BY ticker ORDER BY ts
          MEASURES LAST(DOWN.price) AS bottom, UP.price AS up
          PATTERN ( DOWN+ UP )
          DEFINE DOWN AS price < 100, UP AS price >= 100
        )
        """
        rows = [
            ("A", t("9:00"), 90),
            ("A", t("9:01"), 80),
            ("A", t("9:02"), 105),
        ]
        engine = build(rows, wm=t("9:02"))  # stable but not complete
        assert engine.query(sql).table().tuples == [("A", 80, 105)]

    def test_pattern_state_is_garbage_collected(self):
        rows = [("A", t("9:00") + i * 60_000, 200) for i in range(50)]
        tvr = TimeVaryingRelation(SCHEMA)
        for i, row in enumerate(rows):
            tvr.insert(1000 + i, row)
            if i % 10 == 9:
                tvr.advance_watermark(1000 + i, row[1])
        engine = StreamEngine()
        engine.register_stream("Ticks", tvr)
        dataflow = engine.query(V_SHAPE).dataflow()
        dataflow.run()
        # rows that can never start a match are discarded as the
        # watermark passes them
        assert dataflow.total_state_rows() < 15


class TestValidation:
    def test_order_by_must_be_event_time(self):
        engine = build([])
        with pytest.raises(ValidationError, match="event time"):
            engine.query(
                "SELECT * FROM Ticks MATCH_RECOGNIZE ("
                "ORDER BY price MEASURES A.price AS p "
                "PATTERN (A) DEFINE A AS price > 0)"
            )

    def test_define_symbol_must_be_in_pattern(self):
        engine = build([])
        with pytest.raises(ValidationError, match="not in PATTERN"):
            engine.query(
                "SELECT * FROM Ticks MATCH_RECOGNIZE ("
                "ORDER BY ts MEASURES A.price AS p "
                "PATTERN (A) DEFINE B AS price > 0)"
            )

    def test_measure_symbol_must_be_in_pattern(self):
        engine = build([])
        with pytest.raises(ValidationError, match="not a pattern symbol"):
            engine.query(
                "SELECT * FROM Ticks MATCH_RECOGNIZE ("
                "ORDER BY ts MEASURES Z.price AS p "
                "PATTERN (A) DEFINE A AS price > 0)"
            )

    def test_retraction_input_rejected(self):
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, ("A", t("9:00"), 1))
        tvr.retract(2, ("A", t("9:00"), 1))
        engine = StreamEngine()
        engine.register_stream("Ticks", tvr)
        sql = (
            "SELECT * FROM Ticks MATCH_RECOGNIZE ("
            "ORDER BY ts MEASURES A.price AS p "
            "PATTERN (A) DEFINE A AS price > 0)"
        )
        with pytest.raises(ExecutionError, match="append-only"):
            engine.query(sql).table()

    def test_composable_with_outer_query(self):
        engine = build(
            [
                ("A", t("9:00"), 120),
                ("A", t("9:01"), 90),
                ("A", t("9:02"), 80),
                ("A", t("9:03"), 105),
            ]
        )
        rel = engine.query(
            "SELECT M.ticker, M.bottom * 2 AS doubled FROM "
            + _inline_v()
            + " M WHERE M.bottom < 90"
        ).table()
        assert rel.tuples == [("A", 160)]


def _inline_v() -> str:
    return """Ticks MATCH_RECOGNIZE (
      PARTITION BY ticker ORDER BY ts
      MEASURES LAST(DOWN.price) AS bottom
      PATTERN ( DOWN DOWN+ UP+ )
      DEFINE DOWN AS price < 100, UP AS price >= 100
    )"""
