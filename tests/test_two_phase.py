"""Two-phase sharded aggregation: split, combine, cost model, recovery.

The physical planner (``repro.plan.physical``) may split a sharded
grouped aggregate into per-shard ``PartialAggregate`` operators plus a
merge-stage ``CombineStage``.  The invariant under test throughout:

* with ``coalesce_updates=False`` the final changelog is
  **byte-identical** to the serial run's — values, ``ptime``,
  ``undo``, ``ver``, ordering — at any batch size and shard count,
  through checkpoint/restore, supervised crash recovery, and MQO
  donor grafts;
* with ``coalesce_updates=True`` payloads carry per-group deltas and
  the output is **snapshot-equivalent** (same per-instant snapshots,
  thinner changelog), with visibly less traffic into the merge stage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, RetryPolicy, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.plan.logical import PartialAggregateNode
from repro.plan.physical import split_eligibility
from repro.service import StandingQueryService
from repro.service.admission import TenantPolicy

SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

MINUTE = 60_000

TUMBLE = (
    "Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE) TS"
)

SUM_AVG_SQL = f"""
    SELECT k, wend, SUM(v) AS total, COUNT(*) AS n, AVG(v) AS mean
    FROM {TUMBLE} GROUP BY k, wend
"""
MINMAX_SQL = f"""
    SELECT k, wend, MIN(v) AS lo, MAX(v) AS hi
    FROM {TUMBLE} GROUP BY k, wend
"""
DISTINCT_SQL = f"""
    SELECT k, wend, COUNT(DISTINCT v) AS uniq
    FROM {TUMBLE} GROUP BY k, wend
"""
VAR_SQL = f"""
    SELECT k, wend, VAR_POP(v) AS spread
    FROM {TUMBLE} GROUP BY k, wend
"""

DECOMPOSABLE_QUERIES = [SUM_AVG_SQL, MINMAX_SQL, DISTINCT_SQL]


def keyed_events(rows=60, keys=5, burst=4):
    """Bursty keyed history: ``burst`` same-ptime rows at a time (so
    micro-batching can form real extents), a watermark every 12 rows,
    a few late rows, and a closing max watermark."""
    events, ptime, wm_value = [], 1_000_000, 0
    for i in range(rows):
        if i % burst == 0:
            ptime += MINUTE // 4
        late = -MINUTE if i % 17 == 13 else 0
        event_time = max(0, wm_value + late + (i % 3) * MINUTE)
        events.append(ins(ptime, (i % keys, event_time, i)))
        if i % 12 == 11:
            ptime += 1
            wm_value += 2 * MINUTE
            events.append(wm(ptime, wm_value))
    events.append(wm(ptime + MINUTE, 1 << 60))
    return events


def burst_events(bursts=32, burst_len=64, keys=4):
    """High-fan-in history: each burst is ``burst_len`` same-ptime rows
    of ONE key, so a shard receives globally consecutive sequence runs
    and micro-batching can form full extents (alternating keys would
    cap every extent at one row)."""
    events, ptime = [], 1_000_000
    i = 0
    for b in range(bursts):
        ptime += 10_000
        for _ in range(burst_len):
            events.append(ins(ptime, (b % keys, (i % 4) * MINUTE // 2, i)))
            i += 1
    events.append(wm(ptime + 1000, 1 << 60))
    return events


def make_engine(events, **overrides):
    overrides.setdefault("backend", "sync")
    config = ExecutionConfig(**overrides)
    engine = StreamEngine(config=config)
    engine.register_stream("S", TimeVaryingRelation(SCHEMA, events))
    return engine


def serial_run(events, sql, **overrides):
    return make_engine(events, parallelism=1, **overrides).query(sql).run()


def sharded_run(events, sql, shards, two_phase="on", **overrides):
    engine = make_engine(
        events, parallelism=shards, two_phase=two_phase, **overrides
    )
    return engine.query(sql).run()


class TestEligibility:
    def test_decomposable_query_splits(self):
        query = make_engine(keyed_events(), parallelism=4, two_phase="on").query(
            SUM_AVG_SQL
        )
        decision = query.physical_decision()
        assert decision.use_two_phase
        split, reason = split_eligibility(query.plan)
        assert split is not None
        assert "decomposable" in reason
        # the shard plan roots in the partial operator's node
        nodes, stack = [], [split.shard_plan.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(node.inputs)
        assert any(isinstance(n, PartialAggregateNode) for n in nodes)

    def test_var_pop_is_not_decomposable(self):
        query = make_engine(keyed_events(), parallelism=4, two_phase="on").query(
            VAR_SQL
        )
        split, reason = split_eligibility(query.plan)
        assert split is None
        assert not query.physical_decision().use_two_phase
        # and it still runs correctly, single-phase
        serial = serial_run(keyed_events(), VAR_SQL)
        sharded = sharded_run(keyed_events(), VAR_SQL, shards=4)
        assert sharded.changes == serial.changes

    def test_off_and_parallelism_one_stay_single_phase(self):
        events = keyed_events()
        off = make_engine(events, parallelism=4, two_phase="off").query(
            SUM_AVG_SQL
        )
        assert not off.physical_decision().use_two_phase
        serial = make_engine(events, parallelism=1, two_phase="on").query(
            SUM_AVG_SQL
        )
        assert not serial.physical_decision().use_two_phase

    def test_auto_splits_optimistically_then_reads_feedback(self):
        """auto has no counters on the first plan, so it splits; this
        low-fan-in workload (every row its own group) feeds back a
        fan-in below the combine threshold, so the next plan is
        single-phase."""
        events = [
            ins(1_000_000 + i, (i % 3, i * 7 * MINUTE, i)) for i in range(12)
        ] + [wm(2_000_000, 1 << 60)]
        query = make_engine(events, parallelism=2, two_phase="auto").query(
            SUM_AVG_SQL
        )
        before = query.physical_decision()
        assert before.use_two_phase and before.fan_in is None
        query.run()
        after = query.physical_decision()
        assert not after.use_two_phase
        assert after.fan_in is not None and after.fan_in < 4

    def test_forced_on_ignores_feedback(self):
        events = [
            ins(1_000_000 + i, (i % 3, i * 7 * MINUTE, i)) for i in range(12)
        ] + [wm(2_000_000, 1 << 60)]
        query = make_engine(events, parallelism=2, two_phase="on").query(
            SUM_AVG_SQL
        )
        query.run()
        assert query.physical_decision().use_two_phase


class TestByteIdentity:
    @pytest.mark.parametrize("sql", DECOMPOSABLE_QUERIES)
    @pytest.mark.parametrize("batch_size", [1, 64])
    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_two_phase_matches_serial(self, sql, batch_size, shards):
        events = keyed_events()
        serial = serial_run(events, sql)
        sharded = sharded_run(
            events, sql, shards=shards, batch_size=batch_size
        )
        assert sharded.changes == serial.changes
        assert sharded.watermarks.as_pairs() == serial.watermarks.as_pairs()

    @settings(max_examples=30, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=-2, max_value=2),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=40,
        ),
        shards=st.sampled_from([2, 3]),
        batch_size=st.sampled_from([1, 16]),
        sql=st.sampled_from(DECOMPOSABLE_QUERIES),
    )
    def test_property_random_histories(self, steps, shards, batch_size, sql):
        events, ptime, wm_value = [], 1_000_000, 0
        for is_row, a, b, c in steps:
            ptime += MINUTE // 8
            if is_row:
                events.append(
                    ins(ptime, (a, max(0, wm_value + b * MINUTE), c))
                )
            else:
                wm_value += a * MINUTE
                events.append(wm(ptime, wm_value))
        serial = serial_run(events, sql)
        sharded = sharded_run(
            events, sql, shards=shards, batch_size=batch_size
        )
        assert sharded.changes == serial.changes
        assert sharded.watermarks.as_pairs() == serial.watermarks.as_pairs()


class TestDeltaMode:
    def test_coalesce_is_snapshot_equivalent(self):
        events = keyed_events(rows=120, keys=4, burst=8)
        baseline = serial_run(events, SUM_AVG_SQL)
        delta = sharded_run(
            events,
            SUM_AVG_SQL,
            shards=4,
            batch_size=8,
            coalesce_updates=True,
        )
        instants = sorted(
            {c.ptime for c in baseline.changes}
            | {c.ptime for c in delta.changes}
        )
        for at in instants:
            assert baseline.snapshot(at) == delta.snapshot(at)

    def test_delta_payloads_shrink_merge_traffic(self):
        """The point of the split: the combine stage ingests payload
        batches, not the per-row retract/insert churn the single-phase
        merge carries."""
        events = burst_events(bursts=32, burst_len=64, keys=4)
        engine = make_engine(
            events,
            parallelism=4,
            two_phase="on",
            batch_size=64,
            coalesce_updates=True,
        )
        flow = engine.query(SUM_AVG_SQL).sharded_dataflow()
        assert flow.is_two_phase()
        flow.run()
        report = flow.metrics_report()
        assert report.find("PartialAggregate")["partial_mode"] == "delta"
        combine_in = report.find("CombineAggregate")["rows_in"][0]

        single = sharded_run(
            events, SUM_AVG_SQL, shards=4, two_phase="off", batch_size=64
        )
        merge_traffic = len(single.changes)
        assert combine_in * 4 <= merge_traffic

    def test_replay_mode_reported_when_not_coalescing(self):
        engine = make_engine(keyed_events(), parallelism=2, two_phase="on")
        flow = engine.query(SUM_AVG_SQL).sharded_dataflow()
        flow.run()
        report = flow.metrics_report()
        assert report.find("PartialAggregate")["partial_mode"] == "replay"


class TestRecovery:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_crash_after_checkpoint_recovers_exactly(self, backend):
        events = keyed_events(rows=80, keys=4, burst=4)
        serial = serial_run(events, SUM_AVG_SQL)
        engine = make_engine(
            events,
            parallelism=2,
            two_phase="on",
            backend=backend,
            batch_size=8,
            fault_plan="crash-after-checkpoint:shard=0,at=1",
            retry=RetryPolicy(max_restarts=3, checkpoint_interval=3),
        )
        result = engine.query(SUM_AVG_SQL).run()
        assert result.changes == serial.changes
        assert result.watermarks.as_pairs() == serial.watermarks.as_pairs()
        assert result.metrics.recovery is not None
        assert result.metrics.recovery.shard_restarts > 0

    def test_checkpoint_restore_continues_exactly(self):
        events = keyed_events()
        query = make_engine(events, parallelism=3, two_phase="on").query(
            SUM_AVG_SQL
        )
        uninterrupted = query.run()

        first = query.sharded_dataflow()
        assert first.is_two_phase()
        for event in events[: len(events) // 2]:
            first.process(event, "S")
        blob = first.checkpoint()
        del first

        recovered = query.sharded_dataflow()
        recovered.restore(blob)
        for event in events[len(events) // 2 :]:
            recovered.process(event, "S")
        result = recovered.finish()
        assert result.changes == uninterrupted.changes
        assert result.metrics.totals == uninterrupted.metrics.totals


class TestMQO:
    def test_shared_and_unshared_deltas_identical(self):
        """Donor grafts transplant the combine stage with the shards:
        a standing query grafted onto a two-phase donor emits the same
        deltas as a private flow."""

        def run(share_plans):
            svc = StandingQueryService(
                config=ExecutionConfig(
                    parallelism=2, two_phase="on", share_plans=share_plans
                ),
                default_policy=TenantPolicy(name="*", max_standing_queries=8),
            )
            svc.register_stream("S", TimeVaryingRelation(SCHEMA))
            sqls = [
                f"SELECT k, wend, SUM(v) AS a{i} FROM {TUMBLE} "
                "GROUP BY k, wend EMIT STREAM"
                for i in range(2)
            ]
            queries = [svc.submit("tenant", sql) for sql in sqls]
            for event in keyed_events():
                svc.ingest(event, "S")
            return [
                q.flow.output_slice_of(q.output_id, 0) for q in queries
            ]

        shared = run(True)
        unshared = run(False)
        assert shared == unshared


class TestMetricsShape:
    def test_report_prepends_combine_stage(self):
        engine = make_engine(keyed_events(), parallelism=4, two_phase="on")
        flow = engine.query(SUM_AVG_SQL).sharded_dataflow()
        flow.run()
        report = flow.metrics_report()
        combine = report.find("CombineAggregate")
        partial = report.find("PartialAggregate")
        # stage entries sit above the shard trees and carry no
        # per-shard breakdown; shard entries keep theirs
        assert "shards" not in combine
        assert len(partial["shards"]) == 4
        assert combine["depth"] < partial["depth"]
        assert combine["agg_rows_in"] == partial["rows_out"]
        assert report.render()  # renders without raising

    def test_totals_include_stage_operators(self):
        engine = make_engine(keyed_events(), parallelism=2, two_phase="on")
        flow = engine.query(SUM_AVG_SQL).sharded_dataflow()
        flow.run()
        totals = flow.metrics_report().totals
        combine = flow.metrics_report().find("CombineAggregate")
        assert totals["rows_in"] >= combine["rows_in"][0]
