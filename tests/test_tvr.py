"""Tests for time-varying relations: event ordering, duality, rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ExecutionError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, t
from repro.core.tvr import TimeVaryingRelation, ins, rm, wm


@pytest.fixture
def schema():
    return Schema([timestamp_col("ts", event_time=True), int_col("v")])


class TestConstruction:
    def test_events_must_be_ordered(self, schema):
        tvr = TimeVaryingRelation(schema)
        tvr.insert(10, (1, 1))
        with pytest.raises(ExecutionError):
            tvr.insert(9, (2, 2))

    def test_arity_checked(self, schema):
        tvr = TimeVaryingRelation(schema)
        with pytest.raises(ExecutionError):
            tvr.insert(1, (1, 2, 3))

    def test_from_table_is_bounded(self, schema):
        tvr = TimeVaryingRelation.from_table(schema, [(1, 10), (2, 20)])
        assert tvr.is_bounded
        assert len(tvr.snapshot()) == 2

    def test_stream_not_bounded_until_max(self, schema):
        tvr = TimeVaryingRelation(schema)
        tvr.advance_watermark(5, 3)
        assert not tvr.is_bounded
        tvr.advance_watermark(6, MAX_TIMESTAMP)
        assert tvr.is_bounded


class TestRendering:
    def test_snapshot_at_times(self, schema):
        tvr = TimeVaryingRelation(schema)
        tvr.insert(10, (1, 100))
        tvr.insert(20, (2, 200))
        tvr.retract(30, (1, 100))
        assert len(tvr.snapshot(10)) == 1
        assert len(tvr.snapshot(20)) == 2
        assert len(tvr.snapshot(30)) == 1
        assert tvr.snapshot(30).tuples == [(2, 200)]

    def test_watermark_at(self, schema):
        tvr = TimeVaryingRelation(schema)
        tvr.advance_watermark(10, 5)
        tvr.advance_watermark(20, 15)
        assert tvr.watermark_at(10) == 5
        assert tvr.watermark_at(25) == 15

    def test_events_roundtrip(self, schema):
        events = [wm(5, 2), ins(10, (1, 1)), rm(12, (1, 1))]
        tvr = TimeVaryingRelation(schema, events)
        assert tvr.events() == events
        assert tvr.last_ptime == 12


class TestDuality:
    """Stream and table are two renderings of one TVR (Section 3.1)."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 5)), max_size=30
        )
    )
    def test_snapshot_equals_changelog_replay(self, raw):
        schema = Schema([int_col("k"), int_col("p")])
        tvr = TimeVaryingRelation(schema)
        live = []
        ptime = 0
        for key, _ in raw:
            ptime += 1
            # retract an existing row occasionally, else insert
            if live and key % 3 == 0:
                row = live.pop()
                tvr.retract(ptime, row)
            else:
                row = (key, ptime)
                live.append(row)
                tvr.insert(ptime, row)
        # replaying the changelog (stream rendering) into a bag gives the
        # same relation as the snapshot (table rendering)
        from collections import Counter

        bag = Counter()
        for change in tvr.changelog:
            bag[change.values] += change.delta
        snapshot = Counter(tvr.snapshot().tuples)
        assert +bag == +snapshot
        assert sorted(live) == sorted(bag.elements())
