"""Sharded runtime tests: the serial engine is the ground truth.

The contract of :mod:`repro.runtime`: for every query the partition
analyzer accepts, `StreamEngine(parallelism=N)` produces output
*identical* to the serial engine — values, ``ptime``, ``undo``,
``ver``, and ordering — for any N and any worker-pool backend; every
query the analyzer rejects silently runs serial, with the reason
surfaced in ``explain()``.
"""

import pytest

from repro import ExecutionConfig, StreamEngine
from repro.core.errors import ExecutionError, ValidationError, WatermarkError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MIN_TIMESTAMP, t
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.nexmark import paper_bid_stream
from repro.nexmark.queries import (
    Q0_PASSTHROUGH,
    Q1_CURRENCY,
    Q3_LOCAL_ITEM_SUGGESTION,
    Q4_AVERAGE_PRICE_FOR_CATEGORY,
    Q6_AVERAGE_SELLING_PRICE_BY_SELLER,
    q2_selection,
    q5_hot_items,
    q7_highest_bid,
    q8_monitor_new_users,
    register_udfs,
)
from repro.runtime import WatermarkFrontier


def assert_identical_results(serial, sharded):
    """Every observable of the run must match the serial engine exactly."""
    rs, rp = serial.run(), sharded.run()
    assert rp.changes == rs.changes
    assert rp.watermarks.as_pairs() == rs.watermarks.as_pairs()
    assert rp.last_ptime == rs.last_ptime
    assert rp.late_dropped == rs.late_dropped
    assert rp.expired_rows == rs.expired_rows
    assert sharded.table().rows() == serial.table().rows()


TUMBLED_BY_ITEM = """
    SELECT item, wend, MAX(price) AS maxprice
    FROM Tumble(data => TABLE(Bid),
                timecol => DESCRIPTOR(bidtime),
                dur => INTERVAL '10' MINUTE) TB
    GROUP BY item, wend
"""

TUMBLED_BY_WINDOW = """
    SELECT wend, SUM(price) AS total
    FROM Tumble(data => TABLE(Bid),
                timecol => DESCRIPTOR(bidtime),
                dur => INTERVAL '10' MINUTE) TB
    GROUP BY wend
"""


def paper_engine(parallelism=1, backend="threads"):
    eng = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend=backend)
    )
    eng.register_stream("Bid", paper_bid_stream())
    return eng


def two_stream_engine(parallelism=1, backend="threads"):
    """Two keyed streams for join partitioning tests."""
    eng = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend=backend)
    )
    left = TimeVaryingRelation(
        Schema([int_col("k"), string_col("lv")]),
        [
            ins(t("8:01"), (1, "a")),
            ins(t("8:02"), (2, "b")),
            wm(t("8:03"), t("8:02")),
            ins(t("8:04"), (1, "c")),
            ins(t("8:06"), (3, "d")),
            wm(t("8:08"), t("8:09")),
        ],
    )
    right = TimeVaryingRelation(
        Schema([int_col("k"), int_col("rv")]),
        [
            ins(t("8:01"), (1, 10)),
            wm(t("8:03"), t("8:02")),
            ins(t("8:05"), (2, 20)),
            ins(t("8:07"), (1, 30)),
            wm(t("8:08"), t("8:09")),
        ],
    )
    eng.register_stream("L", left)
    eng.register_stream("R", right)
    return eng


class TestFrontier:
    def test_merged_minimum(self):
        f = WatermarkFrontier(3)
        assert f.current == MIN_TIMESTAMP
        assert f.observe(0, 100, 50) is None  # shards 1,2 still behind
        assert f.observe(1, 110, 80) is None
        assert f.observe(2, 120, 60) == 50  # min finally moves
        assert f.current == 50
        assert f.observe(0, 130, 90) == 60
        assert f.merged.as_pairs() == [(120, 50), (130, 60)]

    def test_regression_rejected(self):
        f = WatermarkFrontier(2)
        f.observe(0, 100, 50)
        with pytest.raises(WatermarkError):
            f.observe(0, 110, 40)

    def test_snapshot_roundtrip(self):
        f = WatermarkFrontier(2)
        f.observe(0, 100, 50)
        f.observe(1, 110, 70)
        g = WatermarkFrontier(2)
        g.restore(f.snapshot())
        assert g.current == f.current
        assert g.merged.as_pairs() == f.merged.as_pairs()
        assert g.shard_value(1) == 70

    def test_snapshot_shard_count_checked(self):
        f = WatermarkFrontier(2)
        with pytest.raises(WatermarkError):
            WatermarkFrontier(3).restore(f.snapshot())

    def test_needs_a_shard(self):
        with pytest.raises(WatermarkError):
            WatermarkFrontier(0)

    @pytest.mark.parametrize(
        "snapshot",
        [
            # merged minimum runs ahead of a shard's own watermark
            {"values": [10, 80], "merged_pairs": [(100, 50)]},
            # merged pairs regress in value
            {"values": [50, 80], "merged_pairs": [(100, 50), (200, 40)]},
            # merged pairs regress in processing time
            {"values": [50, 80], "merged_pairs": [(100, 50), (50, 60)]},
            # shard value is not a timestamp
            {"values": [50, "corrupt"], "merged_pairs": []},
            {"values": [50, None], "merged_pairs": []},
        ],
    )
    def test_corrupt_snapshot_rejected(self, snapshot):
        f = WatermarkFrontier(2)
        with pytest.raises(WatermarkError):
            f.restore(snapshot)

    def test_rejected_restore_leaves_state_untouched(self):
        f = WatermarkFrontier(2)
        f.observe(0, 100, 50)
        f.observe(1, 110, 70)
        with pytest.raises(WatermarkError):
            f.restore({"values": [10, 80], "merged_pairs": [(100, 50)]})
        assert f.shard_value(0) == 50
        assert f.shard_value(1) == 70
        assert f.merged.as_pairs() == [(110, 50)]


class TestAnalyzer:
    """The analyzer's accept/reject decisions, surfaced via explain()."""

    def test_keyed_window_aggregate_partitionable(self):
        query = paper_engine(4).query(TUMBLED_BY_ITEM)
        decision = query.partition_decision()
        assert decision.partitionable
        assert "bid.item" in decision.spec.description
        assert "Runtime: sharded(4) by bid.item" in query.explain()

    def test_window_edge_grouping_partitionable(self):
        query = paper_engine(4).query(TUMBLED_BY_WINDOW)
        decision = query.partition_decision()
        assert decision.partitionable
        assert "tumble_end(bid.bidtime" in decision.spec.description

    def test_equi_join_partitionable(self):
        query = two_stream_engine(4).query(
            "SELECT L.k, L.lv, R.rv FROM L JOIN R ON L.k = R.k"
        )
        assert query.partition_decision().partitionable

    @pytest.mark.parametrize(
        "sql, hint",
        [
            ("SELECT item, price FROM Bid ORDER BY price", "ORDER BY"),
            (
                "SELECT item, MAX(price) OVER (ORDER BY bidtime) AS m FROM Bid",
                "OVER",
            ),
            (
                "SELECT item, MAX(price) OVER "
                "(PARTITION BY item ORDER BY bidtime) AS m FROM Bid",
                "OVER",
            ),
        ],
    )
    def test_global_operators_fall_back(self, sql, hint):
        query = paper_engine(4).query(sql)
        decision = query.partition_decision()
        assert not decision.partitionable
        note = query.explain()
        assert "Runtime: serial — " in note
        if hint is not None:
            assert hint in note

    def test_global_aggregate_falls_back(self):
        eng = StreamEngine(config=ExecutionConfig(parallelism=4))
        eng.register_table("T", Schema([int_col("v")]), [(1,), (2,), (3,)])
        query = eng.query("SELECT SUM(v) FROM T")
        decision = query.partition_decision()
        assert not decision.partitionable
        assert "global aggregate" in decision.reason

    def test_match_recognize_falls_back(self):
        sql = """
            SELECT * FROM Bid MATCH_RECOGNIZE (
                PARTITION BY item
                ORDER BY bidtime
                MEASURES LAST(UP.price) AS peak
                ONE ROW PER MATCH
                AFTER MATCH SKIP PAST LAST ROW
                PATTERN ( UP+ )
                DEFINE UP AS price >= 4
            )
        """
        query = paper_engine(4).query(sql)
        decision = query.partition_decision()
        assert not decision.partitionable
        assert "MATCH_RECOGNIZE" in decision.reason

    def test_serial_engine_explain_has_no_runtime_note(self):
        assert "Runtime:" not in paper_engine(1).query(TUMBLED_BY_ITEM).explain()

    def test_fallback_query_still_runs(self):
        """Non-partitionable queries run serial under parallelism > 1."""
        serial = paper_engine(1).query("SELECT item, price FROM Bid ORDER BY price")
        sharded = paper_engine(4).query("SELECT item, price FROM Bid ORDER BY price")
        assert sharded.table().rows() == serial.table().rows()

    def test_sharded_dataflow_rejects_fallback_plans(self):
        query = paper_engine(4).query(
            "SELECT item, price FROM Bid ORDER BY price"
        )
        with pytest.raises(ValidationError, match="not key-partitionable"):
            query.sharded_dataflow()


class TestEngineConfig:
    def test_parallelism_validated(self):
        with pytest.raises(ValidationError):
            StreamEngine(config=ExecutionConfig(parallelism=0))

    def test_backend_validated(self):
        with pytest.raises(ValidationError):
            StreamEngine(config=ExecutionConfig(parallelism=2, backend="fibers"))

    def test_unknown_backend_rejected_by_pool(self):
        from repro.runtime import run_shards

        with pytest.raises(ExecutionError):
            run_shards([lambda: 1], backend="fibers")


class TestPaperListingEquality:
    """Section 4's Bid stream: sharded output is byte-identical to serial."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_keyed_window_aggregate(self, shards):
        serial = paper_engine(1).query(TUMBLED_BY_ITEM)
        sharded = paper_engine(shards).query(TUMBLED_BY_ITEM)
        assert_identical_results(serial, sharded)
        assert sharded.stream() == serial.stream()

    @pytest.mark.parametrize("emit", ["", " EMIT STREAM", " EMIT STREAM AFTER WATERMARK"])
    def test_emit_modes(self, emit):
        serial = paper_engine(1).query(TUMBLED_BY_ITEM + emit)
        sharded = paper_engine(3).query(TUMBLED_BY_ITEM + emit)
        assert_identical_results(serial, sharded)
        assert sharded.stream() == serial.stream()

    def test_window_edge_routing(self):
        serial = paper_engine(1).query(TUMBLED_BY_WINDOW)
        sharded = paper_engine(3).query(TUMBLED_BY_WINDOW)
        assert_identical_results(serial, sharded)

    def test_stream_deltas(self):
        serial = paper_engine(1).query(TUMBLED_BY_ITEM + " EMIT STREAM")
        sharded = paper_engine(3).query(TUMBLED_BY_ITEM + " EMIT STREAM")
        assert sharded.stream_deltas() == serial.stream_deltas()

    def test_allowed_lateness_late_drops_match(self):
        late = ExecutionConfig(allowed_lateness=60_000)
        serial = paper_engine(1).query(TUMBLED_BY_ITEM, config=late)
        sharded = paper_engine(3).query(TUMBLED_BY_ITEM, config=late)
        assert_identical_results(serial, sharded)

    def test_join_equality(self):
        sql = "SELECT L.k, L.lv, R.rv FROM L JOIN R ON L.k = R.k EMIT STREAM"
        serial = two_stream_engine(1).query(sql)
        sharded = two_stream_engine(3).query(sql)
        assert_identical_results(serial, sharded)
        assert sharded.stream() == serial.stream()

    def test_state_report_totals_match_serial(self):
        serial = paper_engine(1).query(TUMBLED_BY_ITEM)
        sharded_query = paper_engine(3).query(TUMBLED_BY_ITEM)
        dataflow = serial.dataflow()
        dataflow.run()
        sharded = sharded_query.sharded_dataflow()
        sharded.run()
        report = sharded.state_report()
        assert report.total_rows == dataflow.state_report().total_rows
        assert sharded.total_state_rows() == dataflow.total_state_rows()
        assert "×3 shards" in str(report.operators[0].name)


class TestBackendEquality:
    @pytest.mark.parametrize("backend", ["sync", "threads", "processes"])
    def test_backends_identical(self, backend):
        serial = paper_engine(1).query(TUMBLED_BY_ITEM + " EMIT STREAM")
        sharded = paper_engine(3, backend).query(TUMBLED_BY_ITEM + " EMIT STREAM")
        assert_identical_results(serial, sharded)
        assert sharded.stream() == serial.stream()

    @pytest.mark.parametrize("backend", ["sync", "threads", "processes"])
    def test_backends_identical_join(self, backend):
        sql = "SELECT L.k, L.lv, R.rv FROM L JOIN R ON L.k = R.k"
        serial = two_stream_engine(1).query(sql)
        sharded = two_stream_engine(4, backend).query(sql)
        assert_identical_results(serial, sharded)


NEXMARK_CASES = [
    # (name, sql factory, runs on recorded tables, expected partitionable)
    ("q0", lambda: Q0_PASSTHROUGH, False, True),
    ("q1", lambda: Q1_CURRENCY, False, True),
    ("q2", lambda: q2_selection(), False, True),
    ("q3", lambda: Q3_LOCAL_ITEM_SUGGESTION, False, True),
    ("q4", lambda: Q4_AVERAGE_PRICE_FOR_CATEGORY, True, False),
    ("q5", lambda: q5_hot_items(), False, False),
    ("q6", lambda: Q6_AVERAGE_SELLING_PRICE_BY_SELLER, True, False),
    ("q7", lambda: q7_highest_bid(), False, False),
    ("q8", lambda: q8_monitor_new_users(), False, True),
]


class TestNexmarkEquality:
    """NEXMark Q0–Q8: partitionable queries shard, the rest fall back —
    and either way the output matches the serial engine exactly."""

    def _engine(self, nexmark_small, parallelism, recorded):
        eng = StreamEngine(config=ExecutionConfig(parallelism=parallelism))
        if recorded:
            nexmark_small.register_recorded_on(eng)
        else:
            nexmark_small.register_on(eng)
        register_udfs(eng)
        return eng

    @pytest.mark.parametrize(
        "name, sql_of, recorded, expect_sharded",
        NEXMARK_CASES,
        ids=[case[0] for case in NEXMARK_CASES],
    )
    def test_query(self, nexmark_small, name, sql_of, recorded, expect_sharded):
        sql = sql_of()
        serial = self._engine(nexmark_small, 1, recorded).query(sql)
        sharded = self._engine(nexmark_small, 4, recorded).query(sql)
        assert sharded.partition_decision().partitionable == expect_sharded
        assert_identical_results(serial, sharded)


class TestShardedCheckpoint:
    """Checkpoint → crash → restore → replay is byte-identical, sharded."""

    def _events(self, engine, source_names):
        events = []
        for idx, name in enumerate(source_names):
            for i, event in enumerate(engine.source(name).events()):
                events.append((event.ptime, idx, i, event, name))
        events.sort(key=lambda item: (item[0], item[1], item[2]))
        return [(event, name) for _, _, _, event, name in events]

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    def test_crash_recovery_roundtrip(self, fraction):
        engine = paper_engine(3)
        query = engine.query(TUMBLED_BY_ITEM)
        uninterrupted = query.run()
        events = self._events(engine, ["Bid"])
        cut = int(len(events) * fraction)

        first = query.sharded_dataflow()
        for event, name in events[:cut]:
            first.process(event, name)
        checkpoint = first.checkpoint()
        del first  # the "crash"

        recovered = query.sharded_dataflow()
        recovered.restore(checkpoint)
        for event, name in events[cut:]:
            recovered.process(event, name)
        result = recovered.finish()
        assert result.changes == uninterrupted.changes
        assert result.watermarks.as_pairs() == uninterrupted.watermarks.as_pairs()
        assert result.last_ptime == uninterrupted.last_ptime

    def test_checkpoint_bytes_restore_across_backends(self):
        """A batch (threads) run's checkpoint restores into a sync run."""
        engine = paper_engine(3, backend="threads")
        query = engine.query(TUMBLED_BY_ITEM)
        first = query.sharded_dataflow()
        first.run()
        expected = first.result()

        recovered = query.sharded_dataflow(ExecutionConfig(backend="sync"))
        recovered.restore(first.checkpoint())
        result = recovered.result()
        assert result.changes == expected.changes
        assert result.watermarks.as_pairs() == expected.watermarks.as_pairs()

    def test_shard_count_mismatch_rejected(self):
        engine = paper_engine(3)
        query = engine.query(TUMBLED_BY_ITEM)
        first = query.sharded_dataflow(ExecutionConfig(parallelism=3))
        first.run()
        with pytest.raises(ExecutionError, match="shards"):
            query.sharded_dataflow(
                ExecutionConfig(parallelism=2)
            ).restore(first.checkpoint())

    def test_incremental_matches_batch(self):
        engine = paper_engine(4)
        query = engine.query(TUMBLED_BY_ITEM)
        batch = query.sharded_dataflow()
        batch_result = batch.run()

        incremental = query.sharded_dataflow()
        for event, name in self._events(engine, ["Bid"]):
            incremental.process(event, name)
        result = incremental.finish()
        assert result.changes == batch_result.changes
        assert result.watermarks.as_pairs() == batch_result.watermarks.as_pairs()
