"""Tests for the delta-encoded changelog rendering (§6.5.1 option)."""

import pytest

from repro import StreamEngine
from repro.core.errors import ExecutionError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema(
    [timestamp_col("ts", event_time=True), int_col("v"), string_col("k")]
)

SUM_SQL = (
    "SELECT TB.wend, SUM(TB.v) s, COUNT(*) c FROM Tumble("
    "data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '10' MINUTES) TB GROUP BY TB.wend"
)


def make_engine(rows):
    tvr = TimeVaryingRelation(SCHEMA)
    for ptime, ts, v in rows:
        tvr.insert(ptime, (ts, v, "x"))
    tvr.advance_watermark(10_000_000_000, 10_000_000_000)
    engine = StreamEngine()
    engine.register_stream("S", tvr)
    return engine


class TestDeltaView:
    def test_updates_become_differences(self):
        engine = make_engine(
            [(100, t("8:01"), 5), (200, t("8:02"), 7), (300, t("8:03"), -2)]
        )
        out = engine.query(SUM_SQL).stream_deltas()
        assert [(d.key, d.deltas, d.ptime) for d in out] == [
            ((t("8:10"),), (5, 1), 100),
            ((t("8:10"),), (7, 1), 200),
            ((t("8:10"),), (-2, 1), 300),
        ]

    def test_deltas_sum_to_final_state(self):
        engine = make_engine(
            [(100 + i, t("8:01") + (i % 3) * 600_000, i) for i in range(20)]
        )
        out = engine.query(SUM_SQL).stream_deltas()
        totals: dict = {}
        for delta in out:
            s, c = totals.get(delta.key, (0, 0))
            totals[delta.key] = (s + delta.deltas[0], c + delta.deltas[1])
        final = {
            (row[0],): (row[1], row[2])
            for row in engine.query(SUM_SQL).table().tuples
        }
        assert totals == final

    def test_delta_stream_is_half_the_retraction_stream(self):
        engine = make_engine(
            [(100 + i, t("8:01"), 1) for i in range(10)]
        )
        deltas = engine.query(SUM_SQL).stream_deltas()
        retractions = engine.query(SUM_SQL + " EMIT STREAM").stream()
        # n updates: retraction stream has 2n - 1 entries, deltas n
        assert len(deltas) == 10
        assert len(retractions) == 19

    def test_non_numeric_column_rejected(self):
        engine = make_engine([(100, t("8:01"), 5)])
        sql = (
            "SELECT TB.wend, MAX(TB.k) m FROM Tumble("
            "data => TABLE(S), timecol => DESCRIPTOR(ts), "
            "dur => INTERVAL '10' MINUTES) TB GROUP BY TB.wend"
        )
        with pytest.raises(ExecutionError, match="numeric"):
            engine.query(sql).stream_deltas()

    def test_ungrouped_query_rejected(self):
        engine = make_engine([(100, t("8:01"), 5)])
        with pytest.raises(ExecutionError, match="emit keys"):
            engine.query("SELECT v FROM S").stream_deltas()

    def test_composes_with_after_delay(self):
        engine = make_engine(
            [(100, t("8:01"), 5), (200, t("8:02"), 7)]
        )
        out = engine.query(
            SUM_SQL + " EMIT AFTER DELAY INTERVAL '1' SECONDS"
        ).stream_deltas()
        # both updates coalesce into one delta at the timer firing
        assert [(d.deltas, d.ptime) for d in out] == [((12, 2), 1100)]
