"""Tests for FOR SYSTEM_TIME AS OF temporal joins (Section 8)."""

import pytest

from repro import StreamEngine
from repro.core.errors import ExecutionError, ValidationError
from repro.core.schema import (
    Schema,
    float_col,
    int_col,
    string_col,
    timestamp_col,
)
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation

ORDER_SCHEMA = Schema(
    [
        int_col("id"),
        string_col("currency"),
        int_col("amount"),
        timestamp_col("ordertime", event_time=True),
    ]
)
RATE_SCHEMA = Schema(
    [
        string_col("currency"),
        float_col("rate"),
        timestamp_col("ratetime", event_time=True),
    ]
)

SQL = """
SELECT O.id, O.amount, R.rate
FROM Orders O
JOIN Rates FOR SYSTEM_TIME AS OF O.ordertime R
  ON O.currency = R.currency
"""


def build_engine(orders, rates, order_wm=None, rate_wm=None):
    order_tvr = TimeVaryingRelation(ORDER_SCHEMA)
    for ptime, row in orders:
        order_tvr.insert(ptime, row)
    if order_wm:
        order_tvr.advance_watermark(*order_wm)
    rate_tvr = TimeVaryingRelation(RATE_SCHEMA)
    for ptime, row in rates:
        rate_tvr.insert(ptime, row)
    if rate_wm:
        rate_tvr.advance_watermark(*rate_wm)
    engine = StreamEngine()
    engine.register_stream("Orders", order_tvr)
    engine.register_stream("Rates", rate_tvr)
    return engine


class TestSemantics:
    def test_order_enriched_with_rate_at_order_time(self):
        engine = build_engine(
            orders=[(100, (1, "EUR", 10, t("9:30")))],
            rates=[
                (10, ("EUR", 1.10, t("9:00"))),
                (20, ("EUR", 1.20, t("9:45"))),  # after the order
            ],
            order_wm=(200, t("10:00")),
            rate_wm=(150, t("10:00")),
        )
        rel = engine.query(SQL).table()
        assert rel.tuples == [(1, 10, 1.10)]

    def test_emission_waits_for_version_completeness(self):
        # the order arrives before the rate that applies to it
        engine = build_engine(
            orders=[(100, (1, "EUR", 10, t("9:30")))],
            rates=[(150, ("EUR", 1.15, t("9:20")))],  # late version
            order_wm=(300, t("10:00")),
            rate_wm=(200, t("10:00")),
        )
        query = engine.query(SQL)
        # before the rate watermark passes the order time: nothing
        assert query.table(at=120).tuples == []
        # once the rate side is complete up to 9:30, the (late) 9:20
        # version correctly applies
        assert query.table(at=250).tuples == [(1, 10, 1.15)]

    def test_no_version_yet_drops_row(self):
        engine = build_engine(
            orders=[(100, (1, "EUR", 10, t("8:00")))],
            rates=[(10, ("EUR", 1.10, t("9:00")))],  # first version later
            order_wm=(300, t("10:00")),
            rate_wm=(200, t("10:00")),
        )
        assert engine.query(SQL).table().tuples == []

    def test_versions_are_per_key(self):
        engine = build_engine(
            orders=[
                (100, (1, "EUR", 10, t("9:30"))),
                (101, (2, "GBP", 20, t("9:30"))),
            ],
            rates=[
                (10, ("EUR", 1.10, t("9:00"))),
                (11, ("GBP", 0.85, t("9:00"))),
            ],
            order_wm=(300, t("10:00")),
            rate_wm=(200, t("10:00")),
        )
        rel = engine.query(SQL).table().sorted(["id"])
        assert rel.tuples == [(1, 10, 1.10), (2, 20, 0.85)]

    def test_successive_versions(self):
        rates = [
            (10, ("EUR", 1.0, t("9:00"))),
            (11, ("EUR", 2.0, t("9:10"))),
            (12, ("EUR", 3.0, t("9:20"))),
        ]
        orders = [
            (100, (1, "EUR", 1, t("9:05"))),
            (101, (2, "EUR", 1, t("9:10"))),  # boundary: the 9:10 version
            (102, (3, "EUR", 1, t("9:25"))),
        ]
        engine = build_engine(
            orders, rates, order_wm=(300, t("10:00")), rate_wm=(200, t("10:00"))
        )
        rel = engine.query(SQL).table().sorted(["id"])
        assert [r[2] for r in rel.tuples] == [1.0, 2.0, 3.0]

    def test_output_rows_are_insert_only(self):
        engine = build_engine(
            orders=[(100, (1, "EUR", 10, t("9:30")))],
            rates=[(10, ("EUR", 1.10, t("9:00")))],
            order_wm=(300, t("10:00")),
            rate_wm=(200, t("10:00")),
        )
        out = engine.query(SQL + " EMIT STREAM").stream()
        assert all(not c.undo for c in out)

    def test_version_state_pruned(self):
        rates = [(10 + i, ("EUR", float(i), t("9:00") + i * 1000)) for i in range(50)]
        orders = [(200, (1, "EUR", 1, t("9:00") + 49_000))]
        engine = build_engine(
            orders, rates, order_wm=(300, t("10:00")), rate_wm=(250, t("10:00"))
        )
        dataflow = engine.query(SQL).dataflow()
        dataflow.run()
        # after both watermarks hit 10:00, one version per key remains
        assert dataflow.total_state_rows() <= 2


class TestPendingRowsHoldPruning:
    def test_buffered_row_keeps_its_version_alive(self):
        """A row waiting on the right watermark must still find the
        version valid at its (old) timestamp, even after the left
        watermark has moved far past it."""
        orders = [(100, (1, "EUR", 10, t("9:05")))]
        rates = [
            (10, ("EUR", 1.05, t("9:00"))),
            (11, ("EUR", 1.50, t("9:30"))),
        ]
        order_tvr = TimeVaryingRelation(ORDER_SCHEMA)
        for ptime, row in orders:
            order_tvr.insert(ptime, row)
        # the left watermark races ahead while the right side lags
        order_tvr.advance_watermark(200, t("11:00"))
        rate_tvr = TimeVaryingRelation(RATE_SCHEMA)
        for ptime, row in rates:
            rate_tvr.insert(ptime, row)
        rate_tvr.advance_watermark(150, t("9:01"))  # order still pending
        rate_tvr.advance_watermark(300, t("10:00"))  # now released
        engine = StreamEngine()
        engine.register_stream("Orders", order_tvr)
        engine.register_stream("Rates", rate_tvr)
        assert engine.query(SQL).table().tuples == [(1, 10, 1.05)]


class TestValidation:
    def test_as_of_must_reference_left_column(self):
        engine = build_engine([], [])
        with pytest.raises(ValidationError, match="left"):
            engine.query(
                "SELECT O.id FROM Orders O JOIN Rates "
                "FOR SYSTEM_TIME AS OF R.ratetime R ON O.currency = R.currency"
            )

    def test_requires_event_time_probe_column(self):
        engine = build_engine([], [])
        from repro.core.errors import PlanError

        with pytest.raises((ValidationError, PlanError), match="event time"):
            engine.query(
                "SELECT O.id FROM Orders O JOIN Rates "
                "FOR SYSTEM_TIME AS OF O.id R ON O.currency = R.currency"
            )

    def test_requires_equi_condition(self):
        engine = build_engine([], [])
        with pytest.raises(ValidationError, match="equality"):
            engine.query(
                "SELECT O.id FROM Orders O JOIN Rates "
                "FOR SYSTEM_TIME AS OF O.ordertime R ON O.amount > R.rate"
            )

    def test_version_table_must_be_append_only(self):
        order_tvr = TimeVaryingRelation(ORDER_SCHEMA)
        rate_tvr = TimeVaryingRelation(RATE_SCHEMA)
        rate_tvr.insert(10, ("EUR", 1.0, t("9:00")))
        rate_tvr.retract(20, ("EUR", 1.0, t("9:00")))
        engine = StreamEngine()
        engine.register_stream("Orders", order_tvr)
        engine.register_stream("Rates", rate_tvr)
        with pytest.raises(ExecutionError, match="append-only"):
            engine.query(SQL).table()
