"""Tests for row-expression compilation: SQL semantics at runtime."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ExecutionError
from repro.core.schema import SqlType
from repro.plan.rex import (
    RexCall,
    RexCase,
    RexCast,
    RexInput,
    RexLiteral,
    compile_rex,
    references,
    shift_inputs,
    walk,
)


def lit(v, type_=None):
    if type_ is None:
        type_ = {
            bool: SqlType.BOOL,
            int: SqlType.INT,
            float: SqlType.FLOAT,
            str: SqlType.STRING,
            type(None): SqlType.NULL,
        }[type(v)]
    return RexLiteral(v, type=type_)


def inp(i, type_=SqlType.INT):
    return RexInput(i, type=type_)


def call(op, *args, type_=SqlType.BOOL):
    return RexCall(op, tuple(args), type=type_)


def run(rex, row=()):
    return compile_rex(rex)(row)


class TestThreeValuedLogic:
    """Kleene logic for AND/OR/NOT with NULL as unknown."""

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (True, True, True),
            (True, False, False),
            (False, None, False),   # false dominates unknown
            (None, False, False),
            (True, None, None),
            (None, None, None),
        ],
    )
    def test_and(self, a, b, expected):
        assert run(call("AND", lit(a, SqlType.BOOL), lit(b, SqlType.BOOL))) == expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (False, False, False),
            (True, None, True),     # true dominates unknown
            (None, True, True),
            (False, None, None),
            (None, None, None),
        ],
    )
    def test_or(self, a, b, expected):
        assert run(call("OR", lit(a, SqlType.BOOL), lit(b, SqlType.BOOL))) == expected

    def test_not(self):
        assert run(call("NOT", lit(True))) is False
        assert run(call("NOT", lit(None, SqlType.BOOL))) is None


class TestComparisons:
    def test_null_propagates(self):
        assert run(call("=", lit(1), lit(None, SqlType.INT))) is None
        assert run(call("<", lit(None, SqlType.INT), lit(1))) is None

    def test_all_operators(self):
        assert run(call("=", lit(2), lit(2))) is True
        assert run(call("<>", lit(2), lit(3))) is True
        assert run(call("<", lit(2), lit(3))) is True
        assert run(call("<=", lit(3), lit(3))) is True
        assert run(call(">", lit(4), lit(3))) is True
        assert run(call(">=", lit(3), lit(4))) is False


class TestArithmetic:
    def test_basic(self):
        assert run(call("+", lit(2), lit(3), type_=SqlType.INT)) == 5
        assert run(call("-", lit(2), lit(3), type_=SqlType.INT)) == -1
        assert run(call("*", lit(2), lit(3), type_=SqlType.INT)) == 6

    def test_integer_division_truncates_toward_zero(self):
        assert run(call("/", lit(7), lit(2), type_=SqlType.INT)) == 3
        assert run(call("/", lit(-7), lit(2), type_=SqlType.INT)) == -3

    def test_float_division(self):
        assert run(call("/", lit(7.0), lit(2), type_=SqlType.FLOAT)) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            run(call("/", lit(1), lit(0), type_=SqlType.INT))

    def test_null_propagates(self):
        assert run(call("+", lit(None, SqlType.INT), lit(3), type_=SqlType.INT)) is None

    def test_negation(self):
        assert run(call("NEG", lit(5), type_=SqlType.INT)) == -5
        assert run(call("NEG", lit(None, SqlType.INT), type_=SqlType.INT)) is None

    def test_modulo(self):
        assert run(call("%", lit(7), lit(3), type_=SqlType.INT)) == 1


class TestStrings:
    def test_concat(self):
        assert run(call("||", lit("a"), lit("b"), type_=SqlType.STRING)) == "ab"
        assert run(call("||", lit(None, SqlType.STRING), lit("b"),
                        type_=SqlType.STRING)) is None

    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%o", True),
            ("hello", "h_llo", True),
            ("hello", "H%", False),
            ("a.c", "a.c", True),     # dot is literal, not regex
            ("abc", "a.c", False),
            ("50%", "50%", True),
        ],
    )
    def test_like(self, value, pattern, expected):
        assert run(
            call("LIKE", lit(value), lit(pattern))
        ) is expected

    def test_like_null(self):
        assert run(call("LIKE", lit(None, SqlType.STRING), lit("%"))) is None


class TestIn:
    def test_hit_and_miss(self):
        assert run(call("IN", lit(2), lit(1), lit(2))) is True
        assert run(call("IN", lit(9), lit(1), lit(2))) is False

    def test_null_semantics(self):
        # 9 IN (1, NULL) is unknown; 1 IN (1, NULL) is true
        assert run(call("IN", lit(9), lit(1), lit(None, SqlType.INT))) is None
        assert run(call("IN", lit(1), lit(1), lit(None, SqlType.INT))) is True
        assert run(call("IN", lit(None, SqlType.INT), lit(1))) is None


class TestIsNull:
    def test_is_null(self):
        assert run(call("IS NULL", lit(None, SqlType.INT))) is True
        assert run(call("IS NULL", lit(1))) is False
        assert run(call("IS NOT NULL", lit(1))) is True


class TestCase:
    def test_first_match_wins(self):
        rex = RexCase(
            whens=(
                (call(">", inp(0), lit(10)), lit("big")),
                (call(">", inp(0), lit(5)), lit("medium")),
            ),
            else_=lit("small"),
            type=SqlType.STRING,
        )
        fn = compile_rex(rex)
        assert fn((20,)) == "big"
        assert fn((7,)) == "medium"
        assert fn((1,)) == "small"

    def test_no_else_gives_null(self):
        rex = RexCase(
            whens=((call(">", inp(0), lit(10)), lit("big")),),
            else_=None,
            type=SqlType.STRING,
        )
        assert compile_rex(rex)((1,)) is None

    def test_null_condition_is_not_a_match(self):
        rex = RexCase(
            whens=((lit(None, SqlType.BOOL), lit("x")),),
            else_=lit("fallback"),
            type=SqlType.STRING,
        )
        assert compile_rex(rex)(()) == "fallback"


class TestCast:
    def test_casts(self):
        assert run(RexCast(lit("42"), type=SqlType.INT)) == 42
        assert run(RexCast(lit(3.9), type=SqlType.INT)) == 3
        assert run(RexCast(lit(1), type=SqlType.STRING)) == "1"
        assert run(RexCast(lit(0), type=SqlType.BOOL)) is False
        assert run(RexCast(lit("2.5"), type=SqlType.FLOAT)) == 2.5

    def test_null_passes(self):
        assert run(RexCast(lit(None, SqlType.STRING), type=SqlType.INT)) is None

    def test_bad_cast_raises(self):
        with pytest.raises(ExecutionError, match="CAST failed"):
            run(RexCast(lit("nope"), type=SqlType.INT))


class TestInputRefs:
    def test_lookup(self):
        assert run(inp(1), (10, 20, 30)) == 20

    def test_references(self):
        rex = call("AND", call("=", inp(0), inp(2)), call(">", inp(2), lit(5)))
        assert references(rex) == {0, 2}

    def test_shift_inputs(self):
        rex = call("=", inp(3), lit(1))
        shifted = shift_inputs(rex, {3: 0})
        assert references(shifted) == {0}

    def test_shift_requires_mapping(self):
        from repro.core.errors import PlanError

        with pytest.raises(PlanError):
            shift_inputs(inp(5), {})

    def test_walk_covers_all_nodes(self):
        rex = RexCase(
            whens=((call("=", inp(0), lit(1)), inp(1)),),
            else_=RexCast(inp(2), type=SqlType.STRING),
            type=SqlType.STRING,
        )
        indices = {n.index for n in walk(rex) if isinstance(n, RexInput)}
        assert indices == {0, 1, 2}


@given(st.lists(st.one_of(st.integers(-5, 5), st.none()), min_size=2, max_size=2))
def test_comparison_never_raises_on_mixed_nulls(pair):
    a, b = pair
    rex = call("<", lit(a, SqlType.INT), lit(b, SqlType.INT))
    result = run(rex)
    if a is None or b is None:
        assert result is None
    else:
        assert result == (a < b)
