"""Tests for the planner: plan shapes, typing, and the paper's rules."""

import pytest

from repro.core.errors import ValidationError
from repro.core.schema import Schema, SqlType, int_col, string_col, timestamp_col
from repro.core.times import minutes
from repro.plan.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
    WindowKind,
    WindowNode,
)
from repro.plan.planner import Catalog, Planner
from repro.sql.functions import default_registry

BID = Schema(
    [
        timestamp_col("bidtime", event_time=True),
        int_col("price"),
        string_col("item"),
    ]
)
PLAIN = Schema([int_col("a"), int_col("b"), string_col("s")])


@pytest.fixture
def planner():
    catalog = Catalog()
    catalog.register("Bid", BID, bounded=False)
    catalog.register("BidTable", BID, bounded=True)
    catalog.register("T", PLAIN, bounded=True)
    catalog.register("U", PLAIN, bounded=True)
    return Planner(catalog, default_registry())


class TestScansAndProjection:
    def test_select_star(self, planner):
        plan = planner.plan_sql("SELECT * FROM Bid")
        assert isinstance(plan.root, ProjectNode)
        assert plan.root.schema.column_names() == ["bidtime", "price", "item"]
        # verbatim forwarding preserves the event time flag
        assert plan.root.schema.columns[0].event_time

    def test_unknown_table(self, planner):
        with pytest.raises(ValidationError, match="unknown table"):
            planner.plan_sql("SELECT * FROM Nope")

    def test_unknown_column(self, planner):
        with pytest.raises(ValidationError, match="unknown column"):
            planner.plan_sql("SELECT nope FROM Bid")

    def test_computed_column_degrades_alignment(self, planner):
        plan = planner.plan_sql(
            "SELECT bidtime + INTERVAL '1' MINUTE AS shifted FROM Bid"
        )
        assert plan.root.schema.columns[0].type is SqlType.TIMESTAMP
        assert not plan.root.schema.columns[0].event_time

    def test_alias_resolution(self, planner):
        plan = planner.plan_sql("SELECT B.price FROM Bid B")
        assert plan.root.schema.column_names() == ["price"]

    def test_unknown_alias(self, planner):
        with pytest.raises(ValidationError, match="unknown table alias"):
            planner.plan_sql("SELECT X.price FROM Bid B")

    def test_ambiguous_column(self, planner):
        with pytest.raises(ValidationError, match="ambiguous"):
            planner.plan_sql("SELECT a FROM T, U")

    def test_duplicate_alias_rejected(self, planner):
        with pytest.raises(ValidationError, match="duplicate table alias"):
            planner.plan_sql("SELECT 1 FROM T x, U x")

    def test_expression_typing_errors(self, planner):
        with pytest.raises(ValidationError, match="cannot compare"):
            planner.plan_sql("SELECT 1 FROM Bid WHERE price = item")
        with pytest.raises(ValidationError, match="cannot apply"):
            planner.plan_sql("SELECT item + 1 FROM Bid")
        with pytest.raises(ValidationError, match="BOOLEAN"):
            planner.plan_sql("SELECT 1 FROM Bid WHERE price + 1")


class TestWindowTvfs:
    def test_tumble_schema(self, planner):
        plan = planner.plan_sql(
            "SELECT * FROM Tumble(data => TABLE(Bid), "
            "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE)"
        )
        names = plan.root.schema.column_names()
        assert names == ["wstart", "wend", "bidtime", "price", "item"]
        # wend stays watermark-aligned; wstart is conservatively degraded
        # (a future row's wstart can fall behind the watermark)
        assert not plan.root.schema.columns[0].event_time
        assert plan.root.schema.columns[1].event_time

    def test_hop_requires_slide(self, planner):
        with pytest.raises(ValidationError, match="slide"):
            planner.plan_sql(
                "SELECT * FROM Hop(data => TABLE(Bid), "
                "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE)"
            )

    def test_timecol_must_be_event_time(self, planner):
        with pytest.raises(ValidationError, match="event time"):
            planner.plan_sql(
                "SELECT * FROM Tumble(data => TABLE(T), "
                "timecol => DESCRIPTOR(a), dur => INTERVAL '1' MINUTE)"
            )

    def test_unknown_tvf(self, planner):
        with pytest.raises(ValidationError, match="unknown table-valued"):
            planner.plan_sql("SELECT * FROM Wiggle(data => TABLE(Bid))")

    def test_unknown_tvf_parameter(self, planner):
        with pytest.raises(ValidationError, match="no parameter"):
            planner.plan_sql(
                "SELECT * FROM Tumble(data => TABLE(Bid), "
                "timecol => DESCRIPTOR(bidtime), wibble => INTERVAL '1' MINUTE)"
            )

    def test_window_node_kind(self, planner):
        plan = planner.plan_sql(
            "SELECT * FROM Session(data => TABLE(Bid), "
            "timecol => DESCRIPTOR(bidtime), gap => INTERVAL '1' MINUTE)"
        )
        window = plan.root.input
        assert isinstance(window, WindowNode)
        assert window.kind is WindowKind.SESSION


class TestAggregation:
    def test_extension2_rejects_unbounded_non_event_grouping(self, planner):
        with pytest.raises(ValidationError, match="Extension 2"):
            planner.plan_sql("SELECT item, COUNT(*) FROM Bid GROUP BY item")

    def test_bounded_non_event_grouping_allowed(self, planner):
        plan = planner.plan_sql(
            "SELECT item, COUNT(*) FROM BidTable GROUP BY item"
        )
        assert isinstance(plan.root, ProjectNode)

    def test_unbounded_event_time_grouping_allowed(self, planner):
        plan = planner.plan_sql(
            "SELECT TB.wend, MAX(TB.price) FROM Tumble(data => TABLE(Bid), "
            "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) TB "
            "GROUP BY TB.wend"
        )
        agg = plan.root.input
        assert isinstance(agg, AggregateNode)

    def test_window_sibling_key_injected(self, planner):
        """Grouping by wend lets you select wstart (Listing 2's idiom)."""
        plan = planner.plan_sql(
            "SELECT TB.wstart, TB.wend, MAX(TB.price) FROM Tumble("
            "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
            "dur => INTERVAL '10' MINUTE) TB GROUP BY TB.wend"
        )
        agg = plan.root.input
        assert isinstance(agg, AggregateNode)
        assert len(agg.group_indices) == 2

    def test_non_grouped_column_rejected(self, planner):
        with pytest.raises(ValidationError, match="GROUP BY"):
            planner.plan_sql(
                "SELECT item, MAX(price) FROM BidTable GROUP BY price"
            )

    def test_aggregates_cannot_nest(self, planner):
        with pytest.raises(ValidationError, match="nest"):
            planner.plan_sql("SELECT MAX(COUNT(*)) FROM BidTable")

    def test_expression_over_aggregate(self, planner):
        plan = planner.plan_sql(
            "SELECT MAX(price) - MIN(price) AS spread FROM BidTable"
        )
        assert plan.root.schema.column_names() == ["spread"]

    def test_expression_over_group_key(self, planner):
        plan = planner.plan_sql(
            "SELECT price * 2 AS doubled FROM BidTable GROUP BY price"
        )
        assert plan.root.schema.column_names() == ["doubled"]

    def test_having(self, planner):
        plan = planner.plan_sql(
            "SELECT item FROM BidTable GROUP BY item HAVING COUNT(*) > 2"
        )
        assert isinstance(plan.root, ProjectNode)
        assert isinstance(plan.root.input, FilterNode)

    def test_global_aggregate(self, planner):
        plan = planner.plan_sql("SELECT COUNT(*), SUM(price) FROM BidTable")
        agg = plan.root.input
        assert isinstance(agg, AggregateNode)
        assert agg.group_indices == ()

    def test_distinct_select_becomes_grouping(self, planner):
        plan = planner.plan_sql("SELECT DISTINCT item FROM BidTable")
        assert isinstance(plan.root, AggregateNode)

    def test_distinct_on_unbounded_needs_event_time(self, planner):
        with pytest.raises(ValidationError, match="Extension 2"):
            planner.plan_sql("SELECT DISTINCT item FROM Bid")

    def test_sum_requires_numeric(self, planner):
        with pytest.raises(ValidationError, match="numeric"):
            planner.plan_sql("SELECT SUM(item) FROM BidTable")

    def test_completion_and_emit_keys(self, planner):
        plan = planner.plan_sql(
            "SELECT TB.wstart, TB.wend, MAX(TB.price) m FROM Tumble("
            "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
            "dur => INTERVAL '10' MINUTE) TB GROUP BY TB.wend"
        )
        # wend (output ordinal 1) is the completion bound; both window
        # columns identify the aggregate for EMIT purposes
        assert set(plan.root.completion_indices) == {1}
        assert set(plan.root.emit_key_indices) == {0, 1}


class TestJoins:
    def test_explicit_join(self, planner):
        plan = planner.plan_sql(
            "SELECT T.a FROM T JOIN U ON T.a = U.b"
        )
        join = plan.root.input
        assert isinstance(join, JoinNode)

    def test_full_join_planned(self, planner):
        plan = planner.plan_sql("SELECT 1 FROM T FULL OUTER JOIN U ON T.a = U.a")
        join = plan.root.input
        assert isinstance(join, JoinNode)
        assert join.kind.value == "FULL"
        # no per-row completion bound exists for FULL joins
        assert join.completion_indices is None

    def test_right_join_mirrored(self, planner):
        plan = planner.plan_sql(
            "SELECT T.a, U.b FROM T RIGHT JOIN U ON T.a = U.a"
        )
        # a RIGHT join plans as LEFT with swapped inputs + reordering
        text = plan.root.explain()
        assert "LEFT" in text

    def test_comma_join_is_cross(self, planner):
        plan = planner.plan_sql("SELECT 1 FROM T, U")
        join = plan.root.input
        assert isinstance(join, JoinNode)
        assert join.condition is None


class TestSetOps:
    def test_union_all(self, planner):
        plan = planner.plan_sql("SELECT a FROM T UNION ALL SELECT b FROM U")
        assert isinstance(plan.root, UnionNode)

    def test_union_distinct_dedups(self, planner):
        plan = planner.plan_sql("SELECT a FROM T UNION SELECT b FROM U")
        assert isinstance(plan.root, AggregateNode)

    def test_union_arity_mismatch(self, planner):
        from repro.core.errors import PlanError

        with pytest.raises((ValidationError, PlanError)):
            planner.plan_sql("SELECT a, b FROM T UNION ALL SELECT a FROM U")


class TestOrderLimit:
    def test_order_by_name_and_ordinal(self, planner):
        plan = planner.plan_sql("SELECT a, b FROM T ORDER BY b DESC, 1 LIMIT 3")
        assert isinstance(plan.root, SortNode)
        assert plan.root.keys == ((1, False), (0, True))
        assert plan.root.limit == 3

    def test_order_by_unknown(self, planner):
        with pytest.raises(ValidationError, match="ORDER BY"):
            planner.plan_sql("SELECT a FROM T ORDER BY nope")

    def test_order_by_ordinal_out_of_range(self, planner):
        with pytest.raises(ValidationError, match="out of range"):
            planner.plan_sql("SELECT a FROM T ORDER BY 5")


class TestEmitPlacement:
    def test_emit_in_subquery_rejected(self, planner):
        with pytest.raises(ValidationError, match="top level"):
            planner.plan_sql(
                "SELECT * FROM (SELECT a FROM T EMIT STREAM) sub"
            )

    def test_top_level_emit_kept(self, planner):
        plan = planner.plan_sql("SELECT a FROM T EMIT STREAM")
        assert plan.emit.stream

    def test_scalar_subquery_equality_plans_as_semi_join(self, planner):
        plan = planner.plan_sql(
            "SELECT a FROM T WHERE a = (SELECT MAX(a) FROM T)"
        )
        assert "SemiJoin" in plan.root.explain()

    def test_scalar_subquery_comparison_guidance(self, planner):
        # only equality has a semi-join factorization
        with pytest.raises(ValidationError, match="rewrite as a join"):
            planner.plan_sql(
                "SELECT a FROM T WHERE a > (SELECT MAX(a) FROM T)"
            )


class TestExplain:
    def test_explain_renders_tree(self, planner):
        plan = planner.plan_sql(
            "SELECT price FROM Bid WHERE price > 2 EMIT STREAM"
        )
        text = plan.explain()
        assert "EMIT STREAM" in text
        assert "Scan(Bid stream)" in text
