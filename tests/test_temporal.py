"""Tests for time-progressing expressions (Section 8): CURRENT_TIME."""

import pytest

from repro import StreamEngine
from repro.core.errors import ValidationError
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import minutes, t
from repro.core.tvr import TimeVaryingRelation
from repro.plan.logical import TemporalFilterNode

SCHEMA = Schema([timestamp_col("ts", event_time=True), int_col("v")])

TAIL = "SELECT v FROM S WHERE ts > CURRENT_TIME - INTERVAL '10' MINUTES"


def make_engine(rows):
    """rows: list of (ptime, event_ts, v)."""
    tvr = TimeVaryingRelation(SCHEMA)
    for ptime, ts, v in rows:
        tvr.insert(ptime, (ts, v))
    engine = StreamEngine()
    engine.register_stream("S", tvr)
    return engine


class TestPlanning:
    def test_tail_predicate_becomes_temporal_filter(self):
        engine = make_engine([])
        plan = engine.query(TAIL).plan
        assert isinstance(plan.root.input, TemporalFilterNode)
        (bound,) = plan.root.input.bounds
        assert bound.kind == "before"
        assert bound.offset == minutes(10)

    def test_mixed_predicate_splits(self):
        engine = make_engine([])
        plan = engine.query(
            "SELECT v FROM S WHERE ts > CURRENT_TIME - INTERVAL '5' MINUTES "
            "AND v > 3"
        ).plan
        text = plan.root.explain()
        assert "TemporalFilter" in text
        assert "Filter" in text

    def test_current_time_in_select_rejected(self):
        engine = make_engine([])
        with pytest.raises(ValidationError, match="CURRENT_TIME"):
            engine.query("SELECT CURRENT_TIME FROM S")

    def test_unsupported_shape_rejected(self):
        engine = make_engine([])
        with pytest.raises(ValidationError, match="tail-of-stream"):
            engine.query("SELECT v FROM S WHERE v = 1 OR ts > CURRENT_TIME")

    def test_current_time_equality_rejected(self):
        engine = make_engine([])
        with pytest.raises(ValidationError, match="tail-of-stream"):
            engine.query("SELECT v FROM S WHERE ts = CURRENT_TIME")


class TestExecution:
    def test_rows_expire_as_time_passes(self):
        # row arrives at its own event time; visible for 10 minutes
        engine = make_engine(
            [
                (t("8:00"), t("8:00"), 1),
                (t("8:05"), t("8:05"), 2),
                (t("8:30"), t("8:30"), 3),
            ]
        )
        query = engine.query(TAIL)
        assert sorted(query.table(at=t("8:06")).tuples) == [(1,), (2,)]
        # at 8:10 the first row's boundary (8:00 + 10m) has passed
        assert sorted(query.table(at=t("8:10")).tuples) == [(2,)]
        assert query.table(at=t("8:30")).tuples == [(3,)]

    def test_stream_shows_time_driven_retractions(self):
        engine = make_engine([(t("8:00"), t("8:00"), 1)])
        out = engine.query(TAIL + " EMIT STREAM").stream()
        assert [(c.undo, c.ptime) for c in out] == [
            (False, t("8:00")),
            (True, t("8:10")),  # no input event at 8:10 — pure time
        ]

    def test_late_data_already_outside_tail_is_dropped(self):
        # a row arriving after its visibility window never shows up
        engine = make_engine([(t("9:00"), t("8:00"), 1)])
        query = engine.query(TAIL)
        assert query.table(at=t("9:00")).tuples == []

    def test_row_entering_later(self):
        # ts <= CURRENT_TIME - d: rows become visible only after a delay
        engine = make_engine([(t("8:00"), t("8:00"), 1)])
        sql = (
            "SELECT v FROM S WHERE ts <= CURRENT_TIME - INTERVAL '5' MINUTES"
        )
        query = engine.query(sql)
        assert query.table(at=t("8:04")).tuples == []
        assert query.table(at=t("8:05")).tuples == [(1,)]
        out = engine.query(sql + " EMIT STREAM").stream()
        assert [(c.undo, c.ptime) for c in out] == [(False, t("8:05"))]

    def test_windowed_aggregate_over_tail(self):
        """Section 8's motivating example: counting bids of the last hour."""
        rows = [(t("8:00") + i * minutes(1),) * 2 + (i,) for i in range(30)]
        engine = make_engine(rows)
        sql = (
            "SELECT COUNT(*) c FROM S "
            "WHERE ts > CURRENT_TIME - INTERVAL '10' MINUTES"
        )
        query = engine.query(sql)
        # after warm-up the tail holds exactly the last 10 arrivals
        assert query.table(at=t("8:29")).tuples == [(10,)]
        assert query.table(at=t("8:15")).tuples == [(10,)]
        # long after the stream stops, the tail drains to zero
        assert query.table(at=t("12:00")).tuples == [(0,)]

    def test_state_is_bounded_by_expiry(self):
        rows = [(t("8:00") + i * minutes(1),) * 2 + (i,) for i in range(60)]
        engine = make_engine(rows)
        dataflow = engine.query(TAIL).dataflow()
        result = dataflow.run()
        # ~10 minutes of rows live at once, not all 60
        assert result.peak_state_rows <= 12
