"""Unit tests for repro.core.times."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.times import (
    MAX_TIMESTAMP,
    MIN_TIMESTAMP,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
    align_to_window,
    days,
    fmt_duration,
    fmt_time,
    hours,
    millis,
    minutes,
    seconds,
    t,
)


class TestParse:
    def test_basic_clock(self):
        assert t("8:07") == 8 * MILLIS_PER_HOUR + 7 * MILLIS_PER_MINUTE

    def test_midnight(self):
        assert t("0:00") == 0

    def test_with_seconds(self):
        assert t("8:07:30") == t("8:07") + 30_000

    def test_with_millis(self):
        assert t("8:07:30.250") == t("8:07") + 30_250

    def test_fraction_padding(self):
        assert t("0:00:00.5") == 500

    @pytest.mark.parametrize("bad", ["8", "8:60", "x:00", "8:07:61", ""])
    def test_bad_input(self, bad):
        with pytest.raises(ValueError):
            t(bad)

    @pytest.mark.parametrize(
        "bad",
        [
            "-1:30",  # negative hour parsed fine by int(), but not a clock
            "1:-5",
            "+2:00",
            " 3:00",
            "8:1_0",
            "8:07:-3",
            "8:07:01.-5",
            "8:07:aa",
        ],
    )
    def test_rejects_signed_and_malformed_parts(self, bad):
        with pytest.raises(ValueError):
            t(bad)


class TestFormat:
    def test_round_trip_minutes(self):
        assert fmt_time(t("8:07")) == "8:07"

    def test_seconds_shown_when_present(self):
        assert fmt_time(t("8:07:30")) == "8:07:30"

    def test_millis_shown_when_present(self):
        assert fmt_time(t("8:07:30.250")) == "8:07:30.250"

    def test_sentinels(self):
        assert fmt_time(MIN_TIMESTAMP) == "-inf"
        assert fmt_time(MAX_TIMESTAMP) == "+inf"

    def test_sentinels_clamp_symmetrically(self):
        """Both out-of-domain sides render as infinities — a value past
        MIN_TIMESTAMP used to fall through to the numeric renderer."""
        assert fmt_time(MIN_TIMESTAMP - 1) == "-inf"
        assert fmt_time(MAX_TIMESTAMP + 1) == "+inf"

    def test_negative(self):
        assert fmt_time(-t("1:30")) == "-1:30"

    @given(st.integers(min_value=0, max_value=10**9))
    def test_round_trip_any(self, ts):
        assert t(fmt_time(ts).replace("-", "")) == ts


class TestDurations:
    def test_constructors_compose(self):
        assert minutes(10) == 10 * MILLIS_PER_MINUTE
        assert hours(1) == minutes(60) == seconds(3600) == millis(3_600_000)
        assert days(1) == hours(24)

    def test_fractional(self):
        assert minutes(0.5) == seconds(30)

    def test_fmt_duration(self):
        assert fmt_duration(minutes(10)) == "10m"
        assert fmt_duration(hours(1) + minutes(30)) == "1h30m"
        assert fmt_duration(250) == "250ms"
        assert fmt_duration(0) == "0ms"
        assert fmt_duration(-minutes(5)) == "-5m"


class TestAlign:
    def test_basic(self):
        assert align_to_window(t("8:07"), minutes(10)) == t("8:00")
        assert align_to_window(t("8:10"), minutes(10)) == t("8:10")

    def test_offset(self):
        assert align_to_window(t("8:07"), minutes(10), minutes(5)) == t("8:05")

    def test_negative_timestamp(self):
        assert align_to_window(-1, minutes(10)) == -minutes(10)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            align_to_window(0, 0)

    @given(
        st.integers(min_value=-(10**12), max_value=10**12),
        st.integers(min_value=1, max_value=10**7),
    )
    def test_window_contains_timestamp(self, ts, size):
        start = align_to_window(ts, size)
        assert start <= ts < start + size
        assert start % size == 0
