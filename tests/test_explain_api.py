"""The unified explain API: one renderer behind every entry point.

``StreamEngine.explain``, ``PreparedQuery.explain``, the shell's
``\\explain [MODE]`` and the SQL ``EXPLAIN [...]`` spellings all route
through ``repro.explain.render_explain``, so their output can never
drift apart; the pre-1.2 ``explain_analyze`` entry points live on as
warn-once deprecation shims.
"""

import pytest

import repro.config as repro_config
from repro import ExecutionConfig, StreamEngine, ValidationError, parse_explain
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.shell import Shell

SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

MINUTE = 60_000

SQL = """
    SELECT k, wend, SUM(v) AS total
    FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts),
                dur => INTERVAL '2' MINUTE) TS
    GROUP BY k, wend
"""


def make_engine(parallelism=4, two_phase="on"):
    engine = StreamEngine(
        config=ExecutionConfig(
            parallelism=parallelism, backend="sync", two_phase=two_phase
        )
    )
    events = [
        ins(1_000_000 + i, (i % 3, (i % 2) * MINUTE, i)) for i in range(12)
    ] + [wm(2_000_000, 1 << 60)]
    engine.register_stream("S", TimeVaryingRelation(SCHEMA, events))
    return engine


@pytest.fixture(autouse=True)
def fresh_warning_registry():
    saved = set(repro_config._WARNED)
    repro_config._WARNED.clear()
    yield
    repro_config._WARNED.clear()
    repro_config._WARNED.update(saved)


class TestModes:
    def test_logical_is_the_historical_text(self):
        engine = make_engine()
        text = engine.explain(SQL)
        assert "Aggregate(" in text
        assert "Runtime: sharded(4)" in text
        assert "Physical:" not in text and "Costs:" not in text

    def test_physical_shows_the_phase_split(self):
        text = make_engine().explain(SQL, mode="physical")
        assert "Physical: two-phase aggregation (replay payloads)" in text
        assert "merge stage:" in text
        assert "CombineAggregate(" in text
        assert "each of 4 shards:" in text
        assert "PartialAggregate(" in text

    def test_physical_reports_single_phase_reason(self):
        text = make_engine(two_phase="off").explain(SQL, mode="physical")
        assert "Physical: single-phase" in text
        assert "CombineAggregate(" not in text

    def test_costs_shows_threshold_and_decision(self):
        engine = make_engine(two_phase="auto")
        query = engine.query(SQL)
        before = query.explain(mode="costs")
        assert "Costs: two_phase=auto, parallelism=4" in before
        assert "no counter feedback yet" in before
        assert "decision: two_phase" in before
        query.run()
        after = query.explain(mode="costs")
        assert "observed fan-in:" in after
        assert "combine threshold 4" in after

    def test_analyze_appends_runtime_counters(self):
        text = make_engine().explain(SQL, mode="analyze")
        assert "Aggregate(" in text
        assert "rows_in" in text

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="unknown explain mode"):
            make_engine().explain(SQL, mode="quantum")


class TestParity:
    def test_engine_and_query_render_identically(self):
        engine = make_engine()
        query = engine.query(SQL)
        for mode in ("logical", "physical", "costs"):
            assert engine.explain(SQL, mode=mode) == query.explain(mode=mode)


class TestDeprecatedShims:
    def test_engine_shim_warns_once_and_matches(self):
        engine = make_engine()
        with pytest.warns(DeprecationWarning, match="explain_analyze"):
            old = engine.explain_analyze(SQL)
        # second use is silent (warn-once), and output matches the new mode
        old_again = engine.explain_analyze(SQL)
        assert old == old_again == engine.explain(SQL, mode="analyze")

    def test_query_shim_shares_the_warn_once_registry(self):
        engine = make_engine()
        with pytest.warns(DeprecationWarning, match="explain_analyze"):
            engine.query(SQL).explain_analyze()
        # the engine shim is the same deprecated entry point: silent now
        engine.explain_analyze(SQL)


class TestParseExplain:
    def test_plain_and_analyze(self):
        assert parse_explain("EXPLAIN SELECT 1") == ("logical", "SELECT 1")
        assert parse_explain("explain analyze SELECT 1") == (
            "analyze",
            "SELECT 1",
        )

    def test_mode_parentheticals(self):
        assert parse_explain("EXPLAIN (PHYSICAL) SELECT 1") == (
            "physical",
            "SELECT 1",
        )
        assert parse_explain("EXPLAIN ( costs ) SELECT 1") == (
            "costs",
            "SELECT 1",
        )

    def test_not_an_explain(self):
        assert parse_explain("SELECT 1") is None
        assert parse_explain("EXPLAINER SELECT 1") is None

    def test_unknown_mode_raises(self):
        with pytest.raises(ValidationError, match="unknown EXPLAIN mode"):
            parse_explain("EXPLAIN (QUANTUM) SELECT 1")

    def test_analyze_with_parenthetical_rejected(self):
        with pytest.raises(ValidationError, match="no mode parenthetical"):
            parse_explain("EXPLAIN ANALYZE (PHYSICAL) SELECT 1")


class TestShell:
    @pytest.fixture
    def shell(self, tmp_path):
        sh = Shell(
            engine=StreamEngine(
                config=ExecutionConfig(
                    parallelism=2, backend="sync", two_phase="on"
                )
            )
        )
        sh.engine.register_stream(
            "S",
            TimeVaryingRelation(
                SCHEMA,
                [ins(1_000_000, (1, 0, 5)), wm(2_000_000, 1 << 60)],
            ),
        )
        return sh

    def test_explain_default_mode(self, shell):
        out = shell.feed(f"\\explain {SQL};")
        assert "Scan(S stream)" in out
        assert "Physical:" not in out

    def test_explain_mode_token(self, shell):
        out = shell.feed(f"\\explain physical {SQL};")
        assert "Physical: two-phase aggregation" in out
        out = shell.feed(f"\\explain costs {SQL};")
        assert "decision:" in out

    def test_explain_usage_without_sql(self, shell):
        out = shell.feed("\\explain physical")
        assert "usage" in out.lower()

    def test_sql_explain_prefixes(self, shell):
        out = shell.feed(f"EXPLAIN (PHYSICAL) {SQL};")
        assert "Physical: two-phase aggregation" in out
        out = shell.feed(f"EXPLAIN {SQL};")
        assert "Scan(S stream)" in out and "Physical:" not in out

    def test_sql_explain_unknown_mode_reports_error(self, shell):
        out = shell.feed("EXPLAIN (QUANTUM) SELECT 1;")
        assert "unknown EXPLAIN mode" in out
