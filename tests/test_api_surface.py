"""The documented public surface stays importable.

docs/API.md promises that the public surface is exactly
``repro.__all__`` plus the documented package namespaces
(``repro.plan`` / ``repro.runtime`` / ``repro.obs``).  These tests
import every promised name so a refactor that drops or renames one
fails here, with the docs as the source of truth, before any user
notices.
"""

import importlib

import pytest

import repro


# The names docs/API.md calls out explicitly, per stability tier.
STABLE = [
    # engine surface
    "StreamEngine",
    "PreparedQuery",
    "ExecutionConfig",
    "RetryPolicy",
    # explain API
    "EXPLAIN_MODES",
    "parse_explain",
    "render_explain",
    # fault tolerance
    "FaultPlan",
    "FaultSpec",
    "RecoveryStats",
    # observability
    "MetricsReport",
    "RunTelemetry",
    "TraceCollector",
    # errors
    "ReproError",
    "SqlError",
    "ExecutionError",
    "SchemaError",
    "WatermarkError",
]

PROVISIONAL = [
    "PhysicalDecision",
    "TwoPhaseSplit",
    "plan_physical",
    "split_eligibility",
    "MIN_COMBINE_FANIN",
]

PACKAGE_SURFACES = {
    "repro.plan": [
        "LogicalNode",
        "AggregateNode",
        "PartialAggregateNode",
        "plan_fingerprint",
        "PhysicalDecision",
        "TwoPhaseSplit",
        "plan_physical",
        "split_eligibility",
        "MIN_COMBINE_FANIN",
    ],
    "repro.runtime": [
        "ShardedDataflow",
        "CombineStage",
        "WatermarkFrontier",
        "RetryPolicy",
        "FaultPlan",
    ],
    "repro.obs": [
        "MetricsReport",
        "RunTelemetry",
        "RecoveryStats",
        "TraceCollector",
        "LineageRecorder",
    ],
}


class TestTopLevelSurface:
    def test_all_names_resolve(self):
        missing = [n for n in repro.__all__ if not hasattr(repro, n)]
        assert missing == []

    def test_no_duplicates_in_all(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    @pytest.mark.parametrize("name", STABLE + PROVISIONAL)
    def test_documented_name_is_exported(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is not None

    def test_version_is_pep440_ish(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))


class TestPackageSurfaces:
    @pytest.mark.parametrize("package", sorted(PACKAGE_SURFACES))
    def test_package_all_resolves(self, package):
        mod = importlib.import_module(package)
        missing = [n for n in mod.__all__ if not hasattr(mod, n)]
        assert missing == []

    @pytest.mark.parametrize(
        "package,name",
        [(p, n) for p, names in PACKAGE_SURFACES.items() for n in names],
    )
    def test_documented_package_name(self, package, name):
        mod = importlib.import_module(package)
        assert name in mod.__all__
        assert getattr(mod, name) is not None


class TestFacadeCoherence:
    def test_top_level_reexports_are_the_same_objects(self):
        import repro.plan
        import repro.runtime

        assert repro.PhysicalDecision is repro.plan.PhysicalDecision
        assert repro.plan_physical is repro.plan.plan_physical
        assert repro.split_eligibility is repro.plan.split_eligibility
        assert repro.RetryPolicy is repro.runtime.RetryPolicy
        assert repro.FaultPlan is repro.runtime.FaultPlan

    def test_explain_modes_is_the_renderers_contract(self):
        assert repro.EXPLAIN_MODES == ("logical", "physical", "costs", "analyze")
        parsed = repro.parse_explain("EXPLAIN (COSTS) SELECT 1")
        assert parsed == ("costs", "SELECT 1")
        assert repro.parse_explain("SELECT 1") is None
