"""Tests for the dataset-script reader/writer."""

import pytest

from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import t
from repro.io import ScriptError, format_script, parse_schema_line, parse_script
from repro.nexmark import paper_bid_stream

PAPER_SCRIPT = """
# The example dataset of Section 4
schema: bidtime TIMESTAMP EVENT TIME, price INT, item STRING
8:07  WM -> 8:05
8:08  INSERT (8:07, $2, A)
8:12  INSERT (8:11, $3, B)
8:13  INSERT (8:05, $4, C)
8:14  WM -> 8:08
8:15  INSERT (8:09, $5, D)
8:16  WM -> 8:12
8:17  INSERT (8:13, $1, E)
8:18  INSERT (8:17, $6, F)
8:21  WM -> 8:20
"""


class TestParse:
    def test_paper_dataset_parses_to_reference_stream(self):
        parsed = parse_script(PAPER_SCRIPT)
        reference = paper_bid_stream()
        assert parsed.events() == reference.events()
        assert parsed.schema.column_names() == ["bidtime", "price", "item"]
        assert parsed.schema.columns[0].event_time

    def test_schema_line(self):
        schema = parse_schema_line(
            "schema: ts TIMESTAMP EVENT TIME, n INT, f FLOAT, s STRING, b BOOL"
        )
        assert len(schema) == 5
        assert schema.columns[0].event_time
        assert not schema.columns[1].event_time

    def test_explicit_schema_argument(self):
        schema = Schema([timestamp_col("ts", event_time=True), int_col("v")])
        tvr = parse_script("100 INSERT (0:01, 5)", schema)
        assert tvr.snapshot().tuples == [(t("0:01"), 5)]

    def test_retract_lines(self):
        schema = Schema([int_col("v")])
        tvr = parse_script("1 INSERT (5)\n2 RETRACT (5)", schema)
        assert len(tvr.snapshot()) == 0

    def test_null_and_quoted_values(self):
        schema = Schema([int_col("v"), string_col("s")])
        tvr = parse_script("1 INSERT (NULL, 'hello world')", schema)
        assert tvr.snapshot().tuples == [(None, "hello world")]

    def test_numeric_ptime(self):
        schema = Schema([int_col("v")])
        tvr = parse_script("12345 INSERT (1)", schema)
        assert tvr.last_ptime == 12345

    @pytest.mark.parametrize(
        "bad",
        [
            "gibberish line",
            "1 INSERT (1, 2)",  # arity mismatch for single-col schema
            "schema: x WIBBLE",
        ],
    )
    def test_errors(self, bad):
        schema = Schema([int_col("v")])
        with pytest.raises(ScriptError):
            parse_script(bad, schema if "schema" not in bad else None)

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ScriptError, match="twice"):
            parse_script("schema: v INT\nschema: w INT")

    def test_empty_script_rejected(self):
        with pytest.raises(ScriptError):
            parse_script("# nothing\n")


class TestRoundTrip:
    def test_paper_stream_round_trips(self):
        original = paper_bid_stream()
        text = format_script(original)
        parsed = parse_script(text)
        assert parsed.events() == original.events()

    def test_format_renders_readably(self):
        text = format_script(paper_bid_stream())
        assert "8:07  WM -> 8:05" in text
        assert "8:08  INSERT (8:07, 2, 'A')" in text
