"""Tests for the uniform operator-metrics layer (``repro.obs``).

The regression that motivated the layer: ``RunResult.late_dropped``
was summed over an ``isinstance`` allowlist (aggregate, session), so
late rows dropped by OVER and MATCH_RECOGNIZE operators silently
vanished from the result counters.  Counting now lives on the operator
base class, so these tests pin (a) the recovered drops, (b) per-operator
counters across the operator zoo, (c) serial/sharded agreement, and
(d) counter survival across checkpoint/restore.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, minutes, t
from repro.core.tvr import RowEvent, TimeVaryingRelation, ins, wm
from repro.obs import MetricsReport, TraceCollector, merge_shard_reports
from repro.shell import Shell

KEYED_SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)
TICK_SCHEMA = Schema(
    [string_col("ticker"), timestamp_col("ts", event_time=True), int_col("price")]
)

MINUTE = 60_000

OVER_SQL = (
    "SELECT k, ts, v, SUM(v) OVER (PARTITION BY k ORDER BY ts) AS total "
    "FROM S"
)

MATCH_SQL = """
SELECT *
FROM Ticks MATCH_RECOGNIZE (
  PARTITION BY ticker
  ORDER BY ts
  MEASURES FIRST(DOWN.price) AS top, LAST(UP.price) AS recovered
  ONE ROW PER MATCH
  AFTER MATCH SKIP PAST LAST ROW
  PATTERN ( DOWN+ UP+ )
  DEFINE DOWN AS price < 100, UP AS price >= 100
)
"""

TUMBLE_SQL = """
    SELECT k, wend, SUM(v) AS total
    FROM Tumble(data => TABLE(S),
                timecol => DESCRIPTOR(ts),
                dur => INTERVAL '2' MINUTE) TS
    GROUP BY k, wend
"""

SESSION_SQL = """
    SELECT k, wstart, wend, COUNT(*) AS n
    FROM Session(data => TABLE(S),
                 timecol => DESCRIPTOR(ts),
                 key => DESCRIPTOR(k),
                 gap => INTERVAL '1' MINUTE) TS
    GROUP BY k, wstart, wend
"""

SELF_JOIN_SQL = "SELECT a.k, a.v, b.v FROM S a JOIN S b ON a.k = b.k"


def keyed_engine(events, parallelism=1, two_phase=None):
    engine = StreamEngine(
        config=ExecutionConfig(
            parallelism=parallelism, backend="sync", two_phase=two_phase
        )
    )
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    return engine


def late_row_events():
    """One on-time row, a watermark advance, then a late row."""
    return [
        ins(100, (1, t("8:00"), 10)),
        wm(200, t("8:10")),
        ins(300, (1, t("8:01"), 20)),  # behind the 8:10 watermark: late
        wm(400, t("8:30")),
    ]


def tick_engine(parallelism=1):
    tvr = TimeVaryingRelation(TICK_SCHEMA)
    tvr.insert(100, ("A", t("9:00"), 90))
    tvr.insert(200, ("A", t("9:01"), 105))
    tvr.advance_watermark(300, t("9:10"))
    tvr.insert(400, ("A", t("9:02"), 95))  # late: behind the 9:10 watermark
    tvr.advance_watermark(500, MAX_TIMESTAMP)
    engine = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend="sync")
    )
    engine.register_stream("Ticks", tvr)
    return engine


class TestLateDropRegression:
    """The headline bug: drops outside the old allowlist were lost."""

    def test_over_late_drop_reaches_run_result(self):
        result = keyed_engine(late_row_events()).query(OVER_SQL).run()
        assert result.late_dropped == 1
        assert result.metrics.find("Over")["late_dropped"] == 1

    def test_match_recognize_late_drop_reaches_run_result(self):
        result = tick_engine().query(MATCH_SQL).run()
        assert result.late_dropped == 1
        assert result.metrics.find("Match")["late_dropped"] == 1

    def test_aggregate_drops_still_counted(self):
        result = keyed_engine(late_row_events()).query(TUMBLE_SQL).run()
        assert result.late_dropped == 1
        assert result.metrics.find("Aggregate")["late_dropped"] == 1

    def test_result_equals_sum_over_all_operators(self):
        for engine, sql in [
            (keyed_engine(late_row_events()), OVER_SQL),
            (tick_engine(), MATCH_SQL),
            (keyed_engine(late_row_events()), TUMBLE_SQL),
        ]:
            result = engine.query(sql).run()
            assert result.late_dropped == sum(
                entry["late_dropped"] for entry in result.metrics.operators
            )

    def test_serial_and_sharded_engine_agree(self):
        """A parallel engine (which falls back to serial for OVER and
        MATCH plans, and shards the Tumble plan) reports the same drop
        totals as a serial one."""
        cases = [
            (lambda p: keyed_engine(late_row_events(), p), OVER_SQL),
            (lambda p: tick_engine(p), MATCH_SQL),
            (lambda p: keyed_engine(late_row_events(), p), TUMBLE_SQL),
        ]
        for make, sql in cases:
            serial = make(1).query(sql).run()
            sharded = make(4).query(sql).run()
            assert sharded.late_dropped == serial.late_dropped == 1
            assert sharded.expired_rows == serial.expired_rows


class TestPerOperatorCounters:
    def test_aggregate_counts_rows_and_retractions(self):
        events = [
            ins(100, (1, t("8:00"), 10)),
            ins(200, (1, t("8:01"), 20)),
            wm(300, MAX_TIMESTAMP),
        ]
        report = keyed_engine(events).query(TUMBLE_SQL).run().metrics
        agg = report.find("Aggregate")
        assert sum(agg["rows_in"]) == 2
        # second row refines the first sum: retract + re-insert
        assert agg["rows_out"] == 3
        assert agg["retracts_out"] == 1
        assert sum(agg["retracts_in"]) == 0

    def test_join_counts_both_ports(self):
        events = [
            ins(100, (1, t("8:00"), 10)),
            ins(200, (1, t("8:01"), 20)),
            wm(300, MAX_TIMESTAMP),
        ]
        join = (
            keyed_engine(events).query(SELF_JOIN_SQL).run().metrics.find("Join")
        )
        assert join["rows_in"] == [2, 2]  # both sides scan the same stream
        assert join["rows_out"] == 4  # 2x2 pairs on key 1

    def test_session_counters_and_extras(self):
        events = [
            ins(100, (1, t("8:00"), 1)),
            ins(200, (1, t("8:00:30"), 1)),
            ins(300, (2, t("8:05"), 1)),
            wm(400, MAX_TIMESTAMP),
        ]
        session = (
            keyed_engine(events).query(SESSION_SQL).run().metrics.find("Session")
        )
        assert sum(session["rows_in"]) == 3
        assert session["rows_out"] >= 2  # one row per closed session

    def test_over_and_match_row_counts(self):
        over = keyed_engine(late_row_events()).query(OVER_SQL).run().metrics
        assert sum(over.find("Over")["rows_in"]) == 2  # late row included
        match = tick_engine().query(MATCH_SQL).run().metrics.find("Match")
        assert sum(match["rows_in"]) == 3
        assert match["matches_emitted"] == 1

    def test_scan_leaves_marked_and_depths_nest(self):
        report = keyed_engine(late_row_events()).query(TUMBLE_SQL).run().metrics
        leaves = [e for e in report.operators if e["leaf"]]
        assert len(leaves) == 1 and leaves[0]["type"] == "ScanOperator"
        assert report.operators[0]["depth"] == 0  # root first, pre-order
        assert leaves[0]["depth"] == max(e["depth"] for e in report.operators)

    def test_state_peaks_are_observed(self):
        report = keyed_engine(late_row_events()).query(TUMBLE_SQL).run().metrics
        agg = report.find("Aggregate")
        assert agg["peak_state_rows"] >= 1
        assert agg["state_rows"] <= agg["peak_state_rows"]


class TestReportRendering:
    def test_render_lists_operators_and_totals(self):
        report = keyed_engine(late_row_events()).query(TUMBLE_SQL).run().metrics
        text = report.render()
        assert text.startswith("operator metrics")
        assert "Scan(S)" in text
        assert "late_dropped=1" in text
        assert "totals:" in text

    def test_explain_analyze_combines_plan_and_metrics(self):
        engine = keyed_engine(late_row_events())
        text = engine.explain(TUMBLE_SQL, mode="analyze")
        assert "Aggregate(" in text  # the logical plan
        assert "operator metrics" in text  # the runtime annotation
        assert "late_dropped=1" in text

    def test_shell_analyze_command_and_sql_prefix(self):
        engine = keyed_engine(late_row_events())
        shell = Shell(engine)
        out = shell.feed(f"\\analyze {TUMBLE_SQL};")
        assert "operator metrics" in out
        sql_out = None
        for line in f"EXPLAIN ANALYZE {TUMBLE_SQL};".splitlines():
            sql_out = shell.feed(line)
        assert sql_out is not None and "operator metrics" in sql_out
        plain = None
        for line in f"EXPLAIN {TUMBLE_SQL};".splitlines():
            plain = shell.feed(line)
        assert "operator metrics" not in plain

    def test_stats_carries_metrics_report(self):
        stats = keyed_engine(late_row_events()).query(TUMBLE_SQL).stats()
        assert isinstance(stats["metrics"], MetricsReport)
        assert stats["late_dropped"] == 1


class TestShardedMetrics:
    def test_merged_report_shape_and_skew(self):
        events = [ins(100 + i, (i % 5, t("8:00") + i * 1000, i)) for i in range(20)]
        events.append(wm(1000, MAX_TIMESTAMP))
        query = keyed_engine(events, parallelism=4).query(TUMBLE_SQL)
        assert query.partition_decision().partitionable
        report = query.run().metrics
        assert report.shard_count == 4
        assert len(report.shard_rows) == 4
        # every routed row lands on exactly one shard
        assert sum(report.shard_rows) == 20
        assert report.skew is not None
        assert report.skew["max"] >= report.skew["min"]
        # each shard-side entry carries the per-shard rows_in breakdown;
        # the combine-stage entries (two-phase aggregation) sit above
        # the shards and have no per-shard split of their own
        shard_entries = [e for e in report.operators if "shards" in e]
        assert shard_entries
        assert all(len(e["shards"]) == 4 for e in shard_entries)
        assert any("CombineAggregate" in e["operator"] for e in report.operators)

    def test_sharded_totals_match_serial(self):
        events = late_row_events() + [
            ins(500, (k, t("8:20") + k * 1000, k)) for k in range(6)
        ] + [wm(600, MAX_TIMESTAMP)]
        serial = keyed_engine(events).query(TUMBLE_SQL).run().metrics
        # Single-phase execution pinned: a two-phase run reshapes the
        # operator tree, so per-operator totals are covered separately
        # in test_two_phase.py.
        sharded = (
            keyed_engine(events, parallelism=3, two_phase="off")
            .query(TUMBLE_SQL)
            .run()
            .metrics
        )
        st_, sh = serial.totals, sharded.totals
        for key in ("rows_in", "rows_out", "retracts_in", "retracts_out",
                    "late_dropped", "expired_rows", "state_rows"):
            assert sh[key] == st_[key], key

    def test_merge_of_single_report_is_identity(self):
        report = keyed_engine(late_row_events()).query(TUMBLE_SQL).run().metrics
        merged = merge_shard_reports([report])
        assert merged.shard_count == 1
        assert merged.totals == report.totals


@st.composite
def event_histories(draw):
    """Random keyed rows with jittered event times and watermark steps."""
    steps = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=-3, max_value=3),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=30,
        )
    )
    events = []
    ptime = 1_000_000
    wm_value = 0
    for is_row, a, b, c in steps:
        ptime += MINUTE // 4
        if is_row:
            events.append(ins(ptime, (a, max(0, wm_value + b * MINUTE), c)))
        else:
            wm_value += a * MINUTE
            events.append(wm(ptime, wm_value))
    return events


@settings(max_examples=25, deadline=None)
@given(events=event_histories(), shards=st.integers(min_value=2, max_value=5))
def test_property_sharded_metric_totals_equal_serial(events, shards):
    """Flow counters are routing-invariant: summed over shards they equal
    the serial run's, for every history.  (State *peaks* are excluded —
    a sum of per-shard maxima is not the maximum of sums.)"""
    serial = keyed_engine(events).query(TUMBLE_SQL).run()
    # Single-phase pinned: two-phase adds combine-stage operators whose
    # counters are covered separately in test_two_phase.py.
    sharded = (
        keyed_engine(events, parallelism=shards, two_phase="off")
        .query(TUMBLE_SQL)
        .run()
    )
    st_, sh = serial.metrics.totals, sharded.metrics.totals
    for key in ("rows_in", "rows_out", "retracts_in", "retracts_out",
                "late_dropped", "expired_rows", "state_rows"):
        assert sh[key] == st_[key], key
    assert sharded.late_dropped == serial.late_dropped
    assert sum(sharded.metrics.shard_rows) == sum(
        1 for e in events if isinstance(e, RowEvent)
    )


class TestCheckpointRoundtrip:
    def test_serial_checkpoint_preserves_counters(self):
        events = late_row_events()
        query = keyed_engine(events).query(TUMBLE_SQL)
        uninterrupted = query.run()

        first = query.dataflow()
        for event in events[:2]:
            first.process(event, "S")
        blob = first.checkpoint()
        del first

        recovered = query.dataflow()
        recovered.restore(blob)
        for event in events[2:]:
            recovered.process(event, "S")
        result = recovered.finish()
        assert result.late_dropped == uninterrupted.late_dropped == 1
        assert result.metrics.totals == uninterrupted.metrics.totals

    def test_sharded_checkpoint_preserves_counters(self):
        events = late_row_events() + [
            ins(500 + k, (k, t("8:20") + k * 1000, k)) for k in range(6)
        ] + [wm(600, MAX_TIMESTAMP)]
        # Single-phase pinned: the auto cost model may re-plan between the
        # uninterrupted run and the checkpointed one once counter feedback
        # exists; two-phase recovery is covered in test_two_phase.py.
        query = keyed_engine(events, parallelism=3, two_phase="off").query(
            TUMBLE_SQL
        )
        uninterrupted = query.run()

        first = query.sharded_dataflow()
        for event in events[:4]:
            first.process(event, "S")
        blob = first.checkpoint()
        del first

        recovered = query.sharded_dataflow()
        recovered.restore(blob)
        for event in events[4:]:
            recovered.process(event, "S")
        result = recovered.finish()
        assert result.metrics.totals == uninterrupted.metrics.totals
        assert result.late_dropped == uninterrupted.late_dropped


class TestTraceHooks:
    def test_collector_sees_batches_and_watermarks(self):
        events = late_row_events()
        query = keyed_engine(events).query(TUMBLE_SQL)
        dataflow = query.dataflow()
        trace = TraceCollector()
        dataflow.trace = trace
        dataflow.run()
        assert trace.batches >= 1
        assert trace.changes >= 1
        assert trace.watermark_advances >= 1
        summary = trace.summary()
        assert summary["batches"] == trace.batches
        assert summary["watermark_advances"] == trace.watermark_advances
        kinds = {event.kind for event in trace.events}
        assert kinds <= {"batch", "watermark"}
