"""Tests for analytic OVER windows over event time (App. B.2.3)."""

import pytest

from repro import StreamEngine
from repro.core.errors import ValidationError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, seconds, t
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema(
    [
        string_col("k"),
        timestamp_col("ts", event_time=True),
        int_col("v"),
    ]
)


def build(rows, wm=None):
    """rows arrive in list order; (k, event_ts, v)."""
    tvr = TimeVaryingRelation(SCHEMA)
    for i, row in enumerate(rows):
        tvr.insert(1000 + i, row)
    tvr.advance_watermark(5000, wm if wm is not None else MAX_TIMESTAMP)
    engine = StreamEngine()
    engine.register_stream("S", tvr)
    return engine


RUNNING = (
    "SELECT k, ts, v, SUM(v) OVER (PARTITION BY k ORDER BY ts) AS total "
    "FROM S"
)

LAST3 = (
    "SELECT k, v, AVG(v) OVER (PARTITION BY k ORDER BY ts "
    "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS avg3 FROM S"
)


class TestSemantics:
    def test_running_sum(self):
        engine = build(
            [("a", t("9:00"), 1), ("a", t("9:01"), 2), ("a", t("9:02"), 4)]
        )
        rel = engine.query(RUNNING).table().sorted(["ts"])
        assert [r[3] for r in rel.tuples] == [1, 3, 7]

    def test_partitions_independent(self):
        engine = build(
            [("a", t("9:00"), 1), ("b", t("9:00"), 10), ("a", t("9:01"), 2)]
        )
        rel = engine.query(RUNNING).table().sorted(["k", "ts"])
        assert [(r[0], r[3]) for r in rel.tuples] == [
            ("a", 1), ("a", 3), ("b", 10),
        ]

    def test_rows_frame_evicts(self):
        engine = build(
            [("a", t("9:00") + i * 1000, i) for i in range(6)]
        )
        rel = engine.query(LAST3).table().sorted(["v"])
        # window of the last 3 values: avg at v=5 is (3+4+5)/3
        assert rel.tuples[-1][2] == pytest.approx(4.0)
        assert rel.tuples[0][2] == pytest.approx(0.0)

    def test_event_time_order_not_arrival_order(self):
        # arrival order is scrambled; the running sum follows event time
        engine = build(
            [("a", t("9:02"), 4), ("a", t("9:00"), 1), ("a", t("9:01"), 2)]
        )
        rel = engine.query(RUNNING).table().sorted(["ts"])
        assert [r[3] for r in rel.tuples] == [1, 3, 7]

    def test_multiple_calls_same_window(self):
        sql = (
            "SELECT v, SUM(v) OVER (PARTITION BY k ORDER BY ts) s, "
            "COUNT(*) OVER (PARTITION BY k ORDER BY ts) c, "
            "MAX(v) OVER (PARTITION BY k ORDER BY ts) m FROM S"
        )
        engine = build([("a", t("9:00"), 5), ("a", t("9:01"), 3)])
        rel = engine.query(sql).table().sorted(["v"])
        assert rel.tuples == [(3, 8, 2, 5), (5, 5, 1, 5)]

    def test_expression_argument(self):
        sql = (
            "SELECT v, SUM(v * 2) OVER (PARTITION BY k ORDER BY ts) s FROM S"
        )
        engine = build([("a", t("9:00"), 1), ("a", t("9:01"), 2)])
        rel = engine.query(sql).table().sorted(["v"])
        assert rel.tuples == [(1, 2), (2, 6)]

    def test_rows_wait_for_watermark(self):
        engine = build(
            [("a", t("9:00"), 1), ("a", t("9:30"), 2)], wm=t("9:10")
        )
        rel = engine.query(RUNNING).table()
        assert len(rel) == 1  # the 9:30 row is not yet stable

    def test_global_partition(self):
        sql = "SELECT v, COUNT(*) OVER (ORDER BY ts) c FROM S"
        engine = build([("a", t("9:00"), 1), ("b", t("9:01"), 2)])
        rel = engine.query(sql).table().sorted(["v"])
        assert [r[1] for r in rel.tuples] == [1, 2]

    def test_frame_bounds_state(self):
        rows = [("a", t("9:00") + i * 1000, i) for i in range(200)]
        tvr = TimeVaryingRelation(SCHEMA)
        for i, row in enumerate(rows):
            tvr.insert(1000 + i, row)
            if i % 10 == 9:
                tvr.advance_watermark(1000 + i, row[1])
        engine = StreamEngine()
        engine.register_stream("S", tvr)
        dataflow = engine.query(LAST3).dataflow()
        dataflow.run()
        # frame keeps 3 rows; pending keeps at most the watermark lag
        assert dataflow.total_state_rows() < 20


class TestRetractions:
    def test_pending_retraction_absorbed(self):
        """An upstream aggregate may revise rows before they stabilize."""
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, ("a", t("9:00"), 1))
        tvr.retract(2, ("a", t("9:00"), 1))
        tvr.insert(3, ("a", t("9:00"), 2))
        tvr.advance_watermark(4, MAX_TIMESTAMP)
        engine = StreamEngine()
        engine.register_stream("S", tvr)
        rel = engine.query(RUNNING).table()
        assert [r[2] for r in rel.tuples] == [2]

    def test_emitted_retraction_rejected(self):
        from repro.core.errors import ExecutionError

        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, ("a", t("9:00"), 1))
        tvr.advance_watermark(2, t("9:10"))  # row emitted
        tvr.retract(3, ("a", t("9:00"), 1))
        engine = StreamEngine()
        engine.register_stream("S", tvr)
        with pytest.raises(ExecutionError, match="append-only"):
            engine.query(RUNNING).table()

    def test_q6_style_nested_aggregate_feed(self):
        """OVER over an aggregate subquery (NEXMark Q6's shape)."""
        engine = build(
            [("a", t("9:00"), 5), ("a", t("9:00"), 9), ("b", t("9:01"), 4)]
        )
        sql = (
            "SELECT G.k, SUM(G.m) OVER (ORDER BY G.ts) s FROM ("
            "SELECT TB.wend ts, TB.k k, MAX(TB.v) m FROM Tumble("
            "data => TABLE(S), timecol => DESCRIPTOR(ts), "
            "dur => INTERVAL '10' MINUTES) TB GROUP BY TB.wend, TB.k) G"
        )
        rel = engine.query(sql).table().sorted(["s"])
        # two groups: max 9 (a) and max 4 (b); running sums {9,13} or {4,13}
        assert {r[1] for r in rel.tuples} == {rel.tuples[0][1], 13}


class TestValidation:
    def test_order_by_must_be_event_time(self):
        engine = build([])
        with pytest.raises(ValidationError, match="event time"):
            engine.query(
                "SELECT SUM(v) OVER (ORDER BY v) s FROM S"
            )

    def test_mixed_window_specs_rejected(self):
        engine = build([])
        with pytest.raises(ValidationError, match="same"):
            engine.query(
                "SELECT SUM(v) OVER (PARTITION BY k ORDER BY ts) a, "
                "SUM(v) OVER (ORDER BY ts) b FROM S"
            )

    def test_over_with_group_by_rejected(self):
        engine = build([])
        with pytest.raises(ValidationError, match="GROUP BY"):
            engine.query(
                "SELECT k, SUM(v) OVER (ORDER BY ts) s FROM S GROUP BY k"
            )

    def test_non_aggregate_over_rejected(self):
        engine = build([])
        with pytest.raises(ValidationError, match="not an aggregate"):
            engine.query("SELECT UPPER(k) OVER (ORDER BY ts) u FROM S")

    def test_over_in_where_rejected(self):
        engine = build([])
        with pytest.raises(ValidationError, match="OVER"):
            engine.query(
                "SELECT v FROM S WHERE SUM(v) OVER (ORDER BY ts) > 3"
            )
