"""Tests for configurable allowed lateness (Extension 2's noted need)."""

import pytest

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import minutes, seconds, t
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema([timestamp_col("ts", event_time=True), int_col("v")])

SQL = (
    "SELECT TB.wend, COUNT(*) c FROM Tumble(data => TABLE(S), "
    "timecol => DESCRIPTOR(ts), dur => INTERVAL '10' MINUTES) TB "
    "GROUP BY TB.wend"
)


def make_engine():
    tvr = TimeVaryingRelation(SCHEMA)
    tvr.insert(100, (t("8:01"), 1))
    tvr.advance_watermark(200, t("8:12"))  # first window complete
    tvr.insert(300, (t("8:05"), 2))  # late by 7 minutes
    tvr.advance_watermark(400, t("8:30"))
    engine = StreamEngine()
    engine.register_stream("S", tvr)
    return engine


class TestAllowedLateness:
    def test_default_drops_late_rows(self):
        engine = make_engine()
        query = engine.query(SQL)
        assert query.table().tuples == [(t("8:10"), 1)]
        assert query.run().late_dropped == 1

    def test_lateness_keeps_state_and_updates(self):
        engine = make_engine()
        query = engine.query(
            SQL, config=ExecutionConfig(allowed_lateness=minutes(10))
        )
        assert query.table().tuples == [(t("8:10"), 2)]
        assert query.run().late_dropped == 0

    def test_late_firing_appears_in_changelog(self):
        engine = make_engine()
        out = engine.query(
            SQL + " EMIT STREAM",
            config=ExecutionConfig(allowed_lateness=minutes(10)),
        ).stream()
        # initial count, then the late correction (retract + insert)
        assert [(c.values[1], c.undo, c.ptime) for c in out] == [
            (1, False, 100),
            (1, True, 300),
            (2, False, 300),
        ]

    def test_insufficient_lateness_still_drops(self):
        engine = make_engine()
        # the row is 7 minutes past its window end; 2 minutes of slack
        # does not save it (watermark 8:12 >= wend 8:10 + 2min)
        query = engine.query(
            SQL, config=ExecutionConfig(allowed_lateness=minutes(2))
        )
        assert query.table().tuples == [(t("8:10"), 1)]
        assert query.run().late_dropped == 1

    def test_late_pane_with_after_watermark(self):
        """The early/on-time/late pattern: a late correction follows the
        on-time row under EMIT AFTER WATERMARK."""
        engine = make_engine()
        out = engine.query(
            SQL + " EMIT STREAM AFTER WATERMARK",
            config=ExecutionConfig(allowed_lateness=minutes(10)),
        ).stream()
        values = [(c.values[1], c.undo) for c in out]
        assert values == [(1, False), (1, True), (2, False)]

    def test_lateness_extends_join_state(self):
        """Windowed-join expiry stretches by the allowed lateness."""
        from repro.nexmark import paper_bid_stream
        from repro.nexmark.queries import q7_paper

        engine = StreamEngine()
        engine.register_stream("Bid", paper_bid_stream())
        strict = engine.query(q7_paper()).dataflow()
        strict.run()
        lenient = engine.query(
            q7_paper(), config=ExecutionConfig(allowed_lateness=minutes(30))
        ).dataflow()
        lenient.run()
        # same results, but the lenient run retains more join state
        assert lenient.total_state_rows() >= strict.total_state_rows()
