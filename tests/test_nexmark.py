"""Tests for the NEXMark generator and query suite."""

import pytest

from repro import StreamEngine
from repro.core.times import MIN_TIMESTAMP, minutes, seconds, t
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import (
    Q0_PASSTHROUGH,
    Q1_CURRENCY,
    Q3_LOCAL_ITEM_SUGGESTION,
    Q4_AVERAGE_PRICE_FOR_CATEGORY,
    Q6_AVERAGE_SELLING_PRICE_BY_SELLER,
    q2_selection,
    q5_hot_items,
    q7_cql,
    q7_highest_bid,
    q8_monitor_new_users,
    register_udfs,
)


class TestGenerator:
    def test_deterministic(self):
        a = generate(NexmarkConfig(num_events=200, seed=3))
        b = generate(NexmarkConfig(num_events=200, seed=3))
        assert a.bids.events() == b.bids.events()
        assert a.persons.events() == b.persons.events()

    def test_different_seeds_differ(self):
        a = generate(NexmarkConfig(num_events=200, seed=3))
        b = generate(NexmarkConfig(num_events=200, seed=4))
        assert a.bids.events() != b.bids.events()

    def test_event_kind_proportions(self, nexmark_small):
        n_bids = len(nexmark_small.bids.changelog)
        n_auctions = len(nexmark_small.auctions.changelog)
        n_persons = len(nexmark_small.persons.changelog)
        assert n_bids > n_auctions > n_persons
        total = n_bids + n_auctions + n_persons
        assert total == nexmark_small.config.num_events

    def test_watermark_soundness(self, nexmark_small):
        """No row is ever emitted at or below an earlier watermark."""
        for tvr in (nexmark_small.bids, nexmark_small.auctions):
            time_index = next(
                i for i, c in enumerate(tvr.schema.columns) if c.event_time
            )
            for change in tvr.changelog:
                wm_before = tvr.watermarks.value_at(change.ptime - 1)
                assert change.values[time_index] > wm_before

    def test_out_of_orderness_present(self, nexmark_small):
        times = [
            c.values[3] for c in nexmark_small.bids.changelog
        ]  # bidtime column
        assert times != sorted(times), "generator should produce disorder"

    def test_final_watermark_closes_input(self, nexmark_small):
        for tvr in (nexmark_small.bids, nexmark_small.persons):
            last_event_time = max(
                c.values[-1] if tvr is nexmark_small.persons else c.values[3]
                for c in tvr.changelog
            )
            assert tvr.watermarks.current > last_event_time

    def test_referential_integrity(self, nexmark_small):
        person_ids = {c.values[0] for c in nexmark_small.persons.changelog}
        auction_ids = {c.values[0] for c in nexmark_small.auctions.changelog}
        for change in nexmark_small.auctions.changelog:
            assert change.values[6] in person_ids  # seller
        for change in nexmark_small.bids.changelog:
            assert change.values[0] in auction_ids  # auction
            assert change.values[1] in person_ids  # bidder


class TestStreamingQueries:
    def test_q0_passthrough_complete(self, nexmark_engine, nexmark_small):
        rel = nexmark_engine.query(Q0_PASSTHROUGH).table()
        assert len(rel) == len(nexmark_small.bids.changelog)

    def test_q1_currency_applied(self, nexmark_engine):
        rows = nexmark_engine.query(Q1_CURRENCY).table().tuples
        raw = nexmark_engine.query(Q0_PASSTHROUGH).table().tuples
        prices = sorted(r[2] for r in rows)
        expected = sorted(r[2] * 0.89 for r in raw)
        assert prices == pytest.approx(expected)

    def test_q2_filters(self, nexmark_engine):
        rel = nexmark_engine.query(q2_selection(7)).table()
        assert all(r[0] % 7 == 0 for r in rel.tuples)

    def test_q3_join_filter(self, nexmark_engine):
        rel = nexmark_engine.query(Q3_LOCAL_ITEM_SUGGESTION).table()
        assert all(r[2] in ("OR", "ID", "CA") for r in rel.tuples)

    def test_q5_hot_items_is_argmax(self, nexmark_engine):
        rel = nexmark_engine.query(q5_hot_items(seconds(20), seconds(10))).table()
        assert len(rel) > 0
        # per window, every reported count equals that window's max count
        by_window: dict = {}
        for wstart, wend, auction, num in rel.tuples:
            by_window.setdefault((wstart, wend), []).append(num)
        for counts in by_window.values():
            assert len(set(counts)) == 1

    def test_q7_highest_bid_per_window(self, nexmark_engine):
        rel = nexmark_engine.query(q7_highest_bid(seconds(10))).table()
        assert len(rel) > 0
        for wstart, wend, bidtime, price, auction in rel.tuples:
            assert wstart <= bidtime < wend

    def test_q8_new_users(self, nexmark_engine):
        rel = nexmark_engine.query(q8_monitor_new_users(seconds(30))).table()
        # every reported person actually created an auction
        auctions = nexmark_engine.query("SELECT seller FROM Auction").table()
        sellers = {r[0] for r in auctions.tuples}
        assert all(r[0] in sellers for r in rel.tuples)


class TestRecordedQueries:
    @pytest.fixture
    def recorded_engine(self, nexmark_small):
        eng = StreamEngine()
        nexmark_small.register_recorded_on(eng)
        register_udfs(eng)
        return eng

    def test_q4_average_price_by_category(self, recorded_engine):
        rel = recorded_engine.query(Q4_AVERAGE_PRICE_FOR_CATEGORY).table()
        assert 0 < len(rel) <= 10  # at most one row per category
        assert all(r[1] > 0 for r in rel.tuples)

    def test_q6_average_by_seller(self, recorded_engine):
        rel = recorded_engine.query(Q6_AVERAGE_SELLING_PRICE_BY_SELLER).table()
        assert len(rel) > 0

    def test_replay_equivalence(self, nexmark_small, nexmark_engine):
        """The same query over the recording gives the same final result.

        This is adoption reason (4) in Appendix B: a recorded stream can
        be reprocessed by the same query that processed it live.
        """
        recorded = StreamEngine()
        nexmark_small.register_recorded_on(recorded)
        live = nexmark_engine.query(q7_highest_bid(seconds(10))).table()
        replayed = recorded.query(q7_highest_bid(seconds(10))).table()
        assert sorted(live.tuples) == sorted(replayed.tuples)


class TestCqlVsSql:
    def test_q7_equivalence_on_generated_data(self, nexmark_small):
        """CQL Listing 1 and SQL Listing 2 agree on complete windows."""
        engine = StreamEngine()
        nexmark_small.register_on(engine)
        window = seconds(10)
        sql_out = engine.query(
            q7_highest_bid(window, emit="EMIT STREAM AFTER WATERMARK")
        ).stream()
        cql_out = q7_cql(nexmark_small.bids, window=window)
        sql_rows = sorted(
            (c.values[1], c.values[3]) for c in sql_out
        )  # (wend, price)
        cql_rows = sorted((ts, values[2]) for ts, values in cql_out)
        assert sql_rows == cql_rows
