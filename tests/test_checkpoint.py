"""Checkpoint/recovery tests (Appendix B.2.1's fault-tolerance story).

The defining property: run half the events, checkpoint, "crash", build
a fresh dataflow from the same plan, restore, feed the remaining
events — the result is byte-identical to an uninterrupted run.
"""

import pytest

from repro import StreamEngine
from repro.core.errors import ExecutionError
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import seconds, t
from repro.core.tvr import TimeVaryingRelation
from repro.nexmark import NexmarkConfig, generate, paper_bid_stream
from repro.nexmark.queries import q7_highest_bid, q7_paper


def run_with_crash(engine, sql, source_names, crash_fraction=0.5):
    """Run a query with a simulated crash + recovery mid-stream."""
    query = engine.query(sql)
    events = []
    for name in source_names:
        for i, event in enumerate(engine.source(name).events()):
            events.append((event.ptime, source_names.index(name), i, event, name))
    events.sort(key=lambda item: (item[0], item[1], item[2]))
    cut = int(len(events) * crash_fraction)

    first = query.dataflow()
    for _, _, _, event, name in events[:cut]:
        first.process(event, name)
    checkpoint = first.checkpoint()
    del first  # the "crash"

    recovered = query.dataflow()
    recovered.restore(checkpoint)
    for _, _, _, event, name in events[cut:]:
        recovered.process(event, name)
    return recovered.result()


class TestRecoveryEquivalence:
    def test_paper_q7(self):
        engine = StreamEngine()
        engine.register_stream("Bid", paper_bid_stream())
        uninterrupted = engine.query(q7_paper()).run()
        recovered = run_with_crash(engine, q7_paper(), ["Bid"])
        assert recovered.changes == uninterrupted.changes
        assert (
            recovered.watermarks.as_pairs()
            == uninterrupted.watermarks.as_pairs()
        )

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    def test_nexmark_q7_any_crash_point(self, fraction):
        streams = generate(NexmarkConfig(num_events=400, seed=3))
        engine = StreamEngine()
        streams.register_on(engine)
        sql = q7_highest_bid(seconds(10))
        uninterrupted = engine.query(sql).run()
        recovered = run_with_crash(
            engine, sql, ["Person", "Auction", "Bid"], fraction
        )
        assert recovered.changes == uninterrupted.changes

    def test_emit_views_survive_recovery(self):
        engine = StreamEngine()
        engine.register_stream("Bid", paper_bid_stream())
        sql = q7_paper()
        recovered = run_with_crash(engine, sql, ["Bid"])
        from repro.core.emit import EmitSpec
        from repro.exec.materialize import stream_view

        query = engine.query(sql + " EMIT STREAM AFTER WATERMARK")
        expected = query.stream(until="8:21")
        got = stream_view(
            recovered,
            EmitSpec(stream=True, after_watermark=True),
            query.plan.root.completion_indices,
            query.plan.root.emit_key_indices,
            until=t("8:21"),
        )
        assert [c.as_tuple() for c in got] == [c.as_tuple() for c in expected]

    def test_temporal_filter_timers_survive(self):
        schema = Schema([timestamp_col("ts", event_time=True), int_col("v")])
        tvr = TimeVaryingRelation(schema)
        tvr.insert(t("8:00"), (t("8:00"), 1))
        tvr.insert(t("8:05"), (t("8:05"), 2))
        engine = StreamEngine()
        engine.register_stream("S", tvr)
        sql = (
            "SELECT v FROM S WHERE ts > CURRENT_TIME - INTERVAL '10' MINUTES "
            "EMIT STREAM"
        )
        uninterrupted = engine.query(sql).run()
        query = engine.query(sql)
        flow = query.dataflow()
        events = engine.source("S").events()
        flow.process(events[0], "S")
        blob = flow.checkpoint()  # an expiry timer is pending here
        flow2 = query.dataflow()
        flow2.restore(blob)
        flow2.process(events[1], "S")
        result = flow2.finish()  # drains timers past the last event
        assert result.changes == uninterrupted.changes

    def test_checkpoint_plan_mismatch_rejected(self):
        engine = StreamEngine()
        engine.register_stream("Bid", paper_bid_stream())
        flow = engine.query("SELECT * FROM Bid").dataflow()
        flow.run()
        blob = flow.checkpoint()
        other = engine.query(q7_paper()).dataflow()
        with pytest.raises(ExecutionError, match="does not match"):
            other.restore(blob)

    def test_checkpoint_is_a_snapshot_not_a_view(self):
        """Mutating the live dataflow never leaks into the checkpoint."""
        engine = StreamEngine()
        engine.register_stream("Bid", paper_bid_stream())
        query = engine.query(q7_paper())
        events = engine.source("Bid").events()
        flow = query.dataflow()
        for event in events[:4]:
            flow.process(event, "Bid")
        blob = flow.checkpoint()
        for event in events[4:]:
            flow.process(event, "Bid")
        # restoring the midpoint and replaying gives the full answer
        restored = query.dataflow()
        restored.restore(blob)
        for event in events[4:]:
            restored.process(event, "Bid")
        assert restored.result().changes == flow.result().changes
