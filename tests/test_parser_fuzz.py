"""Fuzzing the SQL front end: bad input must fail loudly and precisely.

The parser and planner may reject input only via the position-annotated
SqlError hierarchy — never with AttributeError/IndexError/RecursionError
— no matter what bytes arrive.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SqlError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.plan.planner import Catalog, Planner
from repro.sql.functions import default_registry
from repro.sql.lexer import tokenize
from repro.sql.parser import parse

_SQL_WORDS = [
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "EMIT", "STREAM", "AFTER",
    "WATERMARK", "DELAY", "INTERVAL", "TABLE", "DESCRIPTOR", "JOIN",
    "LEFT", "FULL", "ON", "AND", "OR", "NOT", "IN", "AS", "OVER",
    "PARTITION", "ORDER", "Tumble", "Hop", "Bid", "price", "bidtime",
    "item", "wend", "MAX", "COUNT", "VALUES", "MATCH_RECOGNIZE",
    "'10'", "'x'", "10", "3.5", "(", ")", ",", "*", "=", ">", "+", "-",
    ";", "=>", "CURRENT_TIME", "MINUTES", "[", "]",
]


def catalog_planner():
    catalog = Catalog()
    catalog.register(
        "Bid",
        Schema(
            [
                timestamp_col("bidtime", event_time=True),
                int_col("price"),
                string_col("item"),
            ]
        ),
        bounded=False,
    )
    return Planner(catalog, default_registry())


@settings(max_examples=300, deadline=None)
@given(st.text(min_size=0, max_size=120))
def test_arbitrary_text_never_crashes_lexer_or_parser(text):
    try:
        parse(text)
    except SqlError:
        pass  # the only acceptable failure mode


@settings(max_examples=300, deadline=None)
@given(st.lists(st.sampled_from(_SQL_WORDS), max_size=25))
def test_token_soup_never_crashes_planner(words):
    sql = " ".join(words)
    planner = catalog_planner()
    try:
        planner.plan_sql(sql)
    except SqlError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="()[]'\";,.*", max_size=60))
def test_punctuation_storm(text):
    try:
        tokenize(text)
    except SqlError:
        pass


def test_error_positions_point_into_the_text():
    planner = catalog_planner()
    with pytest.raises(SqlError) as err:
        planner.plan_sql("SELECT wibble FROM Bid")
    rendered = str(err.value)
    assert "^" in rendered and "wibble" in rendered
