"""Tests for the StreamEngine public API."""

import pytest

from repro import StreamEngine
from repro.core.errors import ValidationError
from repro.core.schema import Schema, SqlType, int_col, string_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema(
    [timestamp_col("ts", event_time=True), int_col("v"), string_col("k")]
)


@pytest.fixture
def engine():
    eng = StreamEngine()
    eng.register_table("T", SCHEMA, [(t("8:01"), 1, "a"), (t("8:02"), 2, "b")])
    return eng


class TestRegistration:
    def test_register_table_from_rows(self, engine):
        assert len(engine.query("SELECT * FROM T").table()) == 2

    def test_register_stream(self):
        eng = StreamEngine()
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, (t("8:00"), 1, "x"))
        eng.register_stream("S", tvr)
        assert eng.source("S") is tvr
        assert len(eng.query("SELECT * FROM S").table()) == 1

    def test_register_recorded_stream_as_table(self):
        eng = StreamEngine()
        tvr = TimeVaryingRelation.from_table(SCHEMA, [(t("8:00"), 1, "x")])
        eng.register_table("R", tvr)
        # non-event-time grouping is legal on the bounded registration
        rel = eng.query("SELECT k, COUNT(*) c FROM R GROUP BY k").table()
        assert rel.tuples == [("x", 1)]

    def test_name_lookup_case_insensitive(self, engine):
        assert len(engine.query("SELECT * FROM t").table()) == 2


class TestFunctions:
    def test_register_udf(self, engine):
        engine.register_function("TRIPLE", lambda x: 3 * x, SqlType.INT, 1)
        rel = engine.query("SELECT TRIPLE(v) x FROM T").table()
        assert sorted(rel.tuples) == [(3,), (6,)]

    def test_udf_null_propagates(self, engine):
        engine.register_function("TRIPLE", lambda x: 3 * x, SqlType.INT, 1)
        engine.register_table("N", SCHEMA, [(t("8:01"), None, "a")])
        rel = engine.query("SELECT TRIPLE(v) x FROM N").table()
        assert rel.tuples == [(None,)]

    def test_unknown_function(self, engine):
        with pytest.raises(ValidationError, match="unknown function"):
            engine.query("SELECT WIBBLE(v) FROM T")


class TestQueryLifecycle:
    def test_run_cached_until_source_grows(self):
        eng = StreamEngine()
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, (t("8:00"), 1, "x"))
        eng.register_stream("S", tvr)
        query = eng.query("SELECT * FROM S")
        assert len(query.table()) == 1
        tvr.insert(2, (t("8:01"), 2, "y"))
        assert len(query.table()) == 2  # cache refreshed

    def test_stream_rejected_on_order_by(self, engine):
        query = engine.query("SELECT v FROM T ORDER BY v")
        with pytest.raises(ValidationError, match="stream"):
            query.stream()

    def test_table_accepts_clock_strings(self, engine):
        assert len(engine.query("SELECT * FROM T").table(at="8:30")) == 2

    def test_explain(self, engine):
        text = engine.explain("SELECT v FROM T WHERE v > 1")
        assert "Scan(T table)" in text

    def test_explain_verbose_shows_streaming_metadata(self, engine):
        text = engine.explain("SELECT ts, v FROM T WHERE v > 1", verbose=True)
        assert "bounded" in text
        assert "aligned=['ts']" in text
        assert "complete_when=['ts']<=wm" in text

    def test_stats(self, engine):
        stats = engine.query("SELECT v FROM T").stats()
        assert stats["changes"] == 2
        assert stats["late_dropped"] == 0
        assert stats["state_report"].total_rows == 0  # stateless query

    def test_stream_table_rendering(self, engine):
        rel = engine.query("SELECT v FROM T EMIT STREAM").stream_table()
        assert rel.schema.column_names() == ["v", "undo", "ptime", "ver"]
        assert len(rel) == 2

    def test_emit_property(self, engine):
        q = engine.query("SELECT v FROM T EMIT STREAM AFTER WATERMARK")
        assert q.emit.stream and q.emit.after_watermark
