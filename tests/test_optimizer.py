"""Tests for the rule-based optimizer."""

import pytest

from repro.core.schema import Schema, SqlType, int_col, string_col, timestamp_col
from repro.core.times import minutes
from repro.plan.logical import FilterNode, JoinNode, ProjectNode, ScanNode
from repro.plan.optimizer import (
    and_all,
    fold_constants,
    optimize,
    split_conjuncts,
)
from repro.plan.planner import Catalog, Planner
from repro.plan.rex import RexCall, RexInput, RexLiteral
from repro.sql.functions import default_registry

BID = Schema(
    [
        timestamp_col("bidtime", event_time=True),
        int_col("price"),
        string_col("item"),
    ]
)
PLAIN = Schema([int_col("a"), int_col("b"), string_col("s")])


@pytest.fixture
def planner():
    catalog = Catalog()
    catalog.register("Bid", BID, bounded=False)
    catalog.register("T", PLAIN, bounded=True)
    catalog.register("U", PLAIN, bounded=True)
    return Planner(catalog, default_registry())


def lit(v, type_=SqlType.INT):
    return RexLiteral(v, type=type_)


class TestConstantFolding:
    def test_arithmetic_folds(self):
        rex = RexCall("+", (lit(2), lit(3)), type=SqlType.INT)
        assert fold_constants(rex) == lit(5)

    def test_true_and_simplifies(self):
        x = RexInput(0, type=SqlType.BOOL)
        rex = RexCall("AND", (lit(True, SqlType.BOOL), x), type=SqlType.BOOL)
        assert fold_constants(rex) == x

    def test_false_and_short_circuits(self):
        x = RexInput(0, type=SqlType.BOOL)
        rex = RexCall("AND", (x, lit(False, SqlType.BOOL)), type=SqlType.BOOL)
        assert fold_constants(rex) == lit(False, SqlType.BOOL)

    def test_or_identities(self):
        x = RexInput(0, type=SqlType.BOOL)
        assert fold_constants(
            RexCall("OR", (lit(False, SqlType.BOOL), x), type=SqlType.BOOL)
        ) == x
        assert fold_constants(
            RexCall("OR", (x, lit(True, SqlType.BOOL)), type=SqlType.BOOL)
        ) == lit(True, SqlType.BOOL)

    def test_division_by_zero_not_folded(self):
        rex = RexCall("/", (lit(1), lit(0)), type=SqlType.INT)
        # folding must not raise at plan time; runtime handles it
        assert fold_constants(rex) == rex


class TestConjuncts:
    def test_split_and_rebuild(self):
        a = RexCall("=", (RexInput(0, type=SqlType.INT), lit(1)), type=SqlType.BOOL)
        b = RexCall("=", (RexInput(1, type=SqlType.INT), lit(2)), type=SqlType.BOOL)
        c = RexCall("=", (RexInput(2, type=SqlType.INT), lit(3)), type=SqlType.BOOL)
        combined = and_all([a, b, c])
        assert split_conjuncts(combined) == [a, b, c]

    def test_empty_conjunction_is_true(self):
        assert and_all([]) == lit(True, SqlType.BOOL)


class TestPlanRules:
    def test_always_true_filter_removed(self, planner):
        plan = optimize(planner.plan_sql("SELECT a FROM T WHERE 1 = 1"))
        assert isinstance(plan.root, ProjectNode)
        assert isinstance(plan.root.input, ScanNode)

    def test_filters_merged(self, planner):
        plan = optimize(
            planner.plan_sql(
                "SELECT * FROM (SELECT a, b FROM T WHERE a > 1) x WHERE b > 2"
            )
        )
        # both predicates end up in a single filter below one projection
        text = plan.root.explain()
        assert text.count("Filter") == 1

    def test_projects_merged(self, planner):
        plan = optimize(
            planner.plan_sql("SELECT x.c + 1 FROM (SELECT a + 1 AS c FROM T) x")
        )
        assert isinstance(plan.root, ProjectNode)
        assert isinstance(plan.root.input, ScanNode)

    def test_cross_join_with_where_becomes_inner(self, planner):
        plan = optimize(planner.plan_sql("SELECT 1 FROM T, U WHERE T.a = U.a"))
        join = _find(plan.root, JoinNode)
        assert join.condition is not None
        assert join.hash_left == (0,)
        assert join.hash_right == (0,)

    def test_side_local_predicates_pushed(self, planner):
        plan = optimize(
            planner.plan_sql(
                "SELECT 1 FROM T, U WHERE T.a = U.a AND T.b > 5 AND U.s = 'x'"
            )
        )
        join = _find(plan.root, JoinNode)
        assert isinstance(join.left, FilterNode)
        assert isinstance(join.right, FilterNode)

    def test_q7_time_bounds_derived(self, planner):
        q7 = """
        SELECT MaxBid.wstart, MaxBid.wend, Bid.bidtime, Bid.price, Bid.item
        FROM Bid,
          (SELECT MAX(TB.price) maxPrice, TB.wstart wstart, TB.wend wend
           FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime),
                       dur => INTERVAL '10' MINUTE) TB
           GROUP BY TB.wend) MaxBid
        WHERE Bid.price = MaxBid.maxPrice
          AND Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE
          AND Bid.bidtime < MaxBid.wend
        """
        plan = optimize(planner.plan_sql(q7))
        join = _find(plan.root, JoinNode)
        # hash keys: price = maxPrice
        assert join.hash_left and join.hash_right
        # a bid expires 10 minutes after its own timestamp
        time_index, slack = join.expire_left
        assert slack == minutes(10)
        # the aggregate row expires when the watermark passes wend
        time_index_r, slack_r = join.expire_right
        assert slack_r == 0

    def test_filter_pushed_below_window_tvf(self, planner):
        plan = optimize(
            planner.plan_sql(
                "SELECT TB.wend, MAX(TB.price) m FROM Tumble("
                "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
                "dur => INTERVAL '10' MINUTE) TB "
                "WHERE TB.price > 2 AND TB.wend > TB.bidtime "
                "GROUP BY TB.wend"
            )
        )
        # the price predicate lands below the Tumble; the wend predicate
        # (referencing a window column) stays above it
        text = plan.root.explain()
        tumble_line = next(
            i for i, l in enumerate(text.splitlines()) if "Tumble" in l
        )
        below = "\n".join(text.splitlines()[tumble_line:])
        assert "Filter" in below

    def test_window_pushdown_preserves_results(self, planner):
        from repro import StreamEngine
        from repro.nexmark import paper_bid_stream

        engine = StreamEngine()
        engine.register_stream("Bid", paper_bid_stream())
        sql = (
            "SELECT TB.wend, MAX(TB.price) m FROM Tumble("
            "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
            "dur => INTERVAL '10' MINUTES) TB "
            "WHERE TB.price > 2 GROUP BY TB.wend"
        )
        rel = engine.query(sql).table().sorted(["wend"])
        from repro.core.times import t

        assert rel.tuples == [(t("8:10"), 5), (t("8:20"), 6)]

    def test_optimized_plan_same_schema(self, planner):
        sql = "SELECT a + 1 AS x FROM T WHERE a > 1 ORDER BY x"
        raw = planner.plan_sql(sql)
        opt = optimize(raw)
        assert opt.schema.column_names() == raw.schema.column_names()


def _find(node, cls):
    if isinstance(node, cls):
        return node
    for child in node.inputs:
        found = _find(child, cls)
        if found is not None:
            return found
    return None
