"""Incremental operators vs from-scratch batch recomputation.

For each stateful operator family, hypothesis drives a random input and
checks that folding the operator's changelog equals recomputing the
relational answer from the final input — the strongest correctness
statement short of a proof.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, seconds
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema(
    [
        int_col("k"),
        timestamp_col("ts", event_time=True),
        int_col("v"),
    ]
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),              # key
        st.integers(0, 40),             # event seconds
        st.integers(-20, 20),           # value
    ),
    min_size=1,
    max_size=30,
)


def make_engine(rows):
    tvr = TimeVaryingRelation(SCHEMA)
    ptime = 0
    for k, sec, v in rows:
        ptime += 7
        tvr.insert(ptime, (k, seconds(sec), v))
    tvr.advance_watermark(ptime + 1, MAX_TIMESTAMP)
    engine = StreamEngine()
    engine.register_stream("S", tvr)
    return engine


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_session_windows_match_batch_sessionization(rows):
    gap = seconds(5)
    engine = make_engine(rows)
    sql = (
        "SELECT SB.k, SB.wstart, SB.wend, COUNT(*) c, SUM(SB.v) s "
        "FROM Session(data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "gap => INTERVAL '5' SECONDS, keycol => DESCRIPTOR(k)) SB "
        "GROUP BY SB.wend, SB.k"
    )
    streamed = Counter(engine.query(sql).table().tuples)

    # batch sessionization: sort per key, split on gaps
    expected: Counter = Counter()
    by_key: dict = {}
    for k, sec, v in rows:
        by_key.setdefault(k, []).append((seconds(sec), v))
    for k, items in by_key.items():
        items.sort()
        sessions: list[list[tuple]] = []
        for ts, v in items:
            if sessions and ts < sessions[-1][-1][0] + gap:
                sessions[-1].append((ts, v))
            else:
                sessions.append([(ts, v)])
        for members in sessions:
            wstart = members[0][0]
            wend = members[-1][0] + gap
            expected[
                (k, wstart, wend, len(members), sum(v for _, v in members))
            ] += 1
    assert streamed == +expected


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_running_over_window_matches_batch(rows):
    engine = make_engine(rows)
    sql = (
        "SELECT k, ts, v, SUM(v) OVER (PARTITION BY k ORDER BY ts "
        "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS s FROM S"
    )
    streamed = Counter(engine.query(sql).table().tuples)

    expected: Counter = Counter()
    by_key: dict = {}
    ptime = 0
    for i, (k, sec, v) in enumerate(rows):
        # event-time order with arrival order as the tiebreaker
        by_key.setdefault(k, []).append((seconds(sec), i, v))
    for k, items in by_key.items():
        items.sort()
        for i in range(len(items)):
            frame = items[max(0, i - 2) : i + 1]
            expected[
                (k, items[i][0], items[i][2], sum(v for _, _, v in frame))
            ] += 1
    assert streamed == +expected


@settings(max_examples=40, deadline=None)
@given(
    rows_strategy,
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 40), st.integers(0, 99)),
        min_size=1,
        max_size=15,
    ),
)
def test_temporal_join_matches_batch_as_of(orders, versions):
    order_schema = Schema(
        [
            int_col("ccy"),
            timestamp_col("at", event_time=True),
            int_col("amount"),
        ]
    )
    rate_schema = Schema(
        [
            int_col("ccy"),
            timestamp_col("vt", event_time=True),
            int_col("rate"),
        ]
    )
    order_tvr = TimeVaryingRelation(order_schema)
    ptime = 0
    for k, sec, v in orders:
        ptime += 5
        order_tvr.insert(ptime, (k, seconds(sec), v))
    order_tvr.advance_watermark(ptime + 1, MAX_TIMESTAMP)
    # version times made unique per key so "latest at T" is well defined
    rate_tvr = TimeVaryingRelation(rate_schema)
    seen: set = set()
    uniq_versions = []
    ptime = 0
    for k, sec, rate in versions:
        while (k, sec) in seen:
            sec += 1
        seen.add((k, sec))
        ptime += 5
        rate_tvr.insert(ptime, (k, seconds(sec), rate))
        uniq_versions.append((k, seconds(sec), rate))
    rate_tvr.advance_watermark(ptime + 1, MAX_TIMESTAMP)

    engine = StreamEngine()
    engine.register_stream("Orders", order_tvr)
    engine.register_stream("Rates", rate_tvr)
    streamed = Counter(
        engine.query(
            "SELECT O.amount, R.rate FROM Orders O "
            "JOIN Rates FOR SYSTEM_TIME AS OF O.at R ON O.ccy = R.ccy"
        ).table().tuples
    )

    expected: Counter = Counter()
    for k, at, amount in ((k, seconds(s), v) for k, s, v in orders):
        candidates = [
            (vt, rate) for ck, vt, rate in uniq_versions if ck == k and vt <= at
        ]
        if candidates:
            _, rate = max(candidates)
            expected[(amount, rate)] += 1
    assert streamed == +expected
