"""Property-based tests for SortedMultiset against a list model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.containers import SortedMultiset


class TestBasics:
    def test_empty(self):
        ms = SortedMultiset()
        assert len(ms) == 0
        assert not ms
        with pytest.raises(KeyError):
            ms.min()
        with pytest.raises(KeyError):
            ms.max()

    def test_add_remove(self):
        ms = SortedMultiset()
        ms.add(3)
        ms.add(1)
        ms.add(3)
        assert ms.min() == 1
        assert ms.max() == 3
        assert ms.count(3) == 2
        ms.remove(3)
        assert ms.count(3) == 1
        assert 3 in ms
        ms.remove(3)
        assert 3 not in ms

    def test_remove_missing(self):
        ms = SortedMultiset()
        with pytest.raises(KeyError):
            ms.remove(42)
        assert ms.discard(42) is False
        ms.add(42)
        assert ms.discard(42) is True


@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(-5, 5)),
        max_size=200,
    )
)
def test_matches_list_model(ops):
    ms = SortedMultiset()
    model: list[int] = []
    for op, value in ops:
        if op == "add":
            ms.add(value)
            model.append(value)
        else:
            if value in model:
                ms.remove(value)
                model.remove(value)
            else:
                assert ms.discard(value) is False
        assert len(ms) == len(model)
        assert list(ms) == sorted(model)
        if model:
            assert ms.min() == min(model)
            assert ms.max() == max(model)
