"""Tests for LEFT OUTER JOIN: operator-level and through SQL."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine
from repro.core.changelog import Change, ChangeKind
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation
from repro.exec.operators.outer_join import LeftJoinOperator


def ins(values, ptime=0):
    return Change(ChangeKind.INSERT, tuple(values), ptime)


def rm(values, ptime=0):
    return Change(ChangeKind.RETRACT, tuple(values), ptime)


LEFT = Schema([int_col("lk"), string_col("lv")])
RIGHT = Schema([int_col("rk"), string_col("rv")])


@pytest.fixture
def op():
    return LeftJoinOperator(
        LEFT.concat(RIGHT),
        left_width=2,
        right_width=2,
        condition=lambda row: row[0] == row[2],
        left_key=(0,),
        right_key=(0,),
    )


class TestOperator:
    def test_unmatched_left_is_null_extended(self, op):
        (out,) = op.on_change(0, ins((1, "a")))
        assert out.values == (1, "a", None, None)
        assert out.is_insert

    def test_match_arrival_flips_null_row(self, op):
        op.on_change(0, ins((1, "a")))
        out = op.on_change(1, ins((1, "x")))
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.RETRACT, (1, "a", None, None)),
            (ChangeKind.INSERT, (1, "a", 1, "x")),
        ]

    def test_last_match_retraction_restores_null_row(self, op):
        op.on_change(0, ins((1, "a")))
        op.on_change(1, ins((1, "x")))
        out = op.on_change(1, rm((1, "x")))
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.RETRACT, (1, "a", 1, "x")),
            (ChangeKind.INSERT, (1, "a", None, None)),
        ]

    def test_second_match_does_not_touch_null_row(self, op):
        op.on_change(0, ins((1, "a")))
        op.on_change(1, ins((1, "x")))
        out = op.on_change(1, ins((1, "y")))
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.INSERT, (1, "a", 1, "y")),
        ]

    def test_left_arriving_after_matches(self, op):
        op.on_change(1, ins((1, "x")))
        op.on_change(1, ins((1, "y")))
        out = op.on_change(0, ins((1, "a")))
        assert len(out) == 2
        assert all(c.is_insert for c in out)

    def test_left_retraction_mirrors(self, op):
        op.on_change(0, ins((1, "a")))
        op.on_change(1, ins((1, "x")))
        out = op.on_change(0, rm((1, "a")))
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.RETRACT, (1, "a", 1, "x")),
        ]

    def test_duplicate_left_rows_share_match_count(self, op):
        op.on_change(0, ins((1, "a")))
        op.on_change(0, ins((1, "a")))
        out = op.on_change(1, ins((1, "x")))
        kinds = Counter(c.kind for c in out)
        assert kinds[ChangeKind.RETRACT] == 2  # both null rows withdrawn
        assert kinds[ChangeKind.INSERT] == 2


def _final_bag(changes):
    bag = Counter()
    for change in changes:
        bag[change.values] += change.delta
    return +bag


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["L+", "L-", "R+", "R-"]),
            st.integers(0, 2),
            st.sampled_from(["a", "b"]),
        ),
        max_size=30,
    )
)
def test_incremental_matches_batch_left_join(ops):
    """The operator's folded changelog equals a batch LEFT JOIN."""
    op = LeftJoinOperator(
        LEFT.concat(RIGHT),
        left_width=2,
        right_width=2,
        condition=lambda row: row[0] == row[2],
        left_key=(0,),
        right_key=(0,),
    )
    left_bag: Counter = Counter()
    right_bag: Counter = Counter()
    changes = []
    for kind, key, value in ops:
        row = (key, value)
        if kind == "L+":
            left_bag[row] += 1
            changes.extend(op.on_change(0, ins(row)))
        elif kind == "L-" and left_bag[row] > 0:
            left_bag[row] -= 1
            changes.extend(op.on_change(0, rm(row)))
        elif kind == "R+":
            right_bag[row] += 1
            changes.extend(op.on_change(1, ins(row)))
        elif kind == "R-" and right_bag[row] > 0:
            right_bag[row] -= 1
            changes.extend(op.on_change(1, rm(row)))

    expected: Counter = Counter()
    for lrow, lcount in left_bag.items():
        matches = [
            (rrow, rcount)
            for rrow, rcount in right_bag.items()
            if rrow[0] == lrow[0] and rcount > 0
        ]
        if not matches:
            if lcount > 0:
                expected[lrow + (None, None)] += lcount
        else:
            for rrow, rcount in matches:
                expected[lrow + rrow] += lcount * rcount
    assert _final_bag(changes) == +expected


class TestThroughSql:
    @pytest.fixture
    def engine(self):
        eng = StreamEngine()
        auction_schema = Schema(
            [int_col("id"), string_col("item"),
             timestamp_col("ts", event_time=True)]
        )
        bid_schema = Schema(
            [int_col("auction"), int_col("price"),
             timestamp_col("bidtime", event_time=True)]
        )
        eng.register_table(
            "Auction", auction_schema,
            [(1, "vase", t("8:00")), (2, "book", t("8:01"))],
        )
        eng.register_table(
            "Bid", bid_schema, [(1, 50, t("8:02")), (1, 70, t("8:03"))]
        )
        return eng

    def test_left_join_keeps_unmatched(self, engine):
        rel = engine.query(
            "SELECT A.item, B.price FROM Auction A "
            "LEFT JOIN Bid B ON A.id = B.auction"
        ).table()
        assert sorted(rel.tuples, key=str) == sorted(
            [("vase", 50), ("vase", 70), ("book", None)], key=str
        )

    def test_left_join_null_columns_degrade_alignment(self, engine):
        query = engine.query(
            "SELECT A.item, B.bidtime FROM Auction A "
            "LEFT JOIN Bid B ON A.id = B.auction"
        )
        assert not query.schema.column("bidtime").event_time

    def test_streaming_left_join_changelog(self):
        eng = StreamEngine()
        left_schema = Schema(
            [int_col("k"), timestamp_col("ts", event_time=True)]
        )
        right_schema = Schema(
            [int_col("k"), timestamp_col("ts", event_time=True)]
        )
        left = TimeVaryingRelation(left_schema)
        right = TimeVaryingRelation(right_schema)
        left.insert(10, (1, t("8:00")))
        right.insert(20, (1, t("8:01")))
        eng.register_stream("L", left)
        eng.register_stream("R", right)
        out = eng.query(
            "SELECT L.k FROM L LEFT JOIN R ON L.k = R.k EMIT STREAM"
        ).stream()
        # insert null-extended, retract it, insert matched
        assert [(c.undo, c.ptime) for c in out] == [
            (False, 10),
            (True, 20),
            (False, 20),
        ]
