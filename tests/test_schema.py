"""Unit tests for schemas, columns, and event-time metadata."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import (
    Column,
    Schema,
    SqlType,
    int_col,
    string_col,
    timestamp_col,
)


@pytest.fixture
def bid_schema():
    return Schema(
        [
            timestamp_col("bidtime", event_time=True),
            int_col("price"),
            string_col("item"),
        ]
    )


class TestColumn:
    def test_event_time_requires_timestamp(self):
        with pytest.raises(SchemaError):
            Column("x", SqlType.INT, event_time=True)

    def test_degraded_drops_alignment(self):
        col = timestamp_col("ts", event_time=True)
        assert col.degraded().event_time is False
        # degrading a plain column is the identity
        plain = int_col("n")
        assert plain.degraded() is plain

    def test_renamed(self):
        assert timestamp_col("a").renamed("b").name == "b"

    def test_str_marks_event_time(self):
        assert "EVENT TIME" in str(timestamp_col("ts", event_time=True))


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([int_col("a"), int_col("A")])

    def test_lookup_case_insensitive(self, bid_schema):
        assert bid_schema.index_of("PRICE") == 1
        assert bid_schema.column("BidTime").name == "bidtime"
        assert "ITEM" in bid_schema

    def test_unknown_column(self, bid_schema):
        with pytest.raises(SchemaError, match="no column"):
            bid_schema.index_of("missing")

    def test_event_time_columns(self, bid_schema):
        assert [c.name for c in bid_schema.event_time_columns] == ["bidtime"]

    def test_concat_disambiguates(self, bid_schema):
        joined = bid_schema.concat(bid_schema)
        names = joined.column_names()
        assert len(names) == 6
        assert len({n.lower() for n in names}) == 6
        # left names win; right collisions get suffixes
        assert names[:3] == ["bidtime", "price", "item"]

    def test_project_and_renamed(self, bid_schema):
        projected = bid_schema.project(["item", "price"])
        assert projected.column_names() == ["item", "price"]
        renamed = bid_schema.renamed(["a", "b", "c"])
        assert renamed.column_names() == ["a", "b", "c"]
        # alignment flags survive a rename
        assert renamed.columns[0].event_time

    def test_renamed_arity_check(self, bid_schema):
        with pytest.raises(SchemaError):
            bid_schema.renamed(["only", "two"])

    def test_degraded(self, bid_schema):
        assert bid_schema.degraded().event_time_columns == []

    def test_iteration_and_len(self, bid_schema):
        assert len(bid_schema) == 3
        assert [c.name for c in bid_schema] == ["bidtime", "price", "item"]


class TestSqlType:
    def test_numeric_comparability(self):
        assert SqlType.INT.is_comparable_with(SqlType.FLOAT)
        assert not SqlType.INT.is_comparable_with(SqlType.STRING)

    def test_null_comparable_with_all(self):
        assert SqlType.NULL.is_comparable_with(SqlType.STRING)

    def test_temporal(self):
        assert SqlType.TIMESTAMP.is_temporal
        assert SqlType.INTERVAL.is_temporal
        assert not SqlType.INT.is_temporal
