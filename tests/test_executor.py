"""Tests for the dataflow executor."""

import pytest

from repro import StreamEngine
from repro.core.errors import ExecutionError
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import MAX_TIMESTAMP, minutes, t
from repro.core.tvr import TimeVaryingRelation
from repro.exec.executor import Dataflow
from repro.plan.optimizer import optimize
from repro.plan.planner import Catalog, Planner
from repro.sql.functions import default_registry

SCHEMA = Schema(
    [timestamp_col("ts", event_time=True), int_col("v"), string_col("k")]
)


def make_engine(events=(), bounded_rows=None):
    engine = StreamEngine()
    if bounded_rows is not None:
        engine.register_table("S", SCHEMA, bounded_rows)
    else:
        tvr = TimeVaryingRelation(SCHEMA)
        for event in events:
            tvr.apply(event)
        engine.register_stream("S", tvr)
    return engine


class TestBasics:
    def test_projection_filter_pipeline(self):
        engine = make_engine(bounded_rows=[(1, 10, "a"), (2, 3, "b")])
        rel = engine.query("SELECT v * 2 AS d FROM S WHERE v > 5").table()
        assert rel.tuples == [(20,)]

    def test_global_count_on_empty_input(self):
        engine = make_engine(bounded_rows=[])
        rel = engine.query("SELECT COUNT(*) c FROM S").table()
        assert rel.tuples == [(0,)]

    def test_global_aggregates(self):
        engine = make_engine(bounded_rows=[(1, 10, "a"), (2, 4, "b")])
        rel = engine.query(
            "SELECT COUNT(*) c, SUM(v) s, AVG(v) a, MIN(v) lo, MAX(v) hi FROM S"
        ).table()
        assert rel.tuples == [(2, 14, 7.0, 4, 10)]

    def test_missing_source_rejected(self):
        engine = make_engine(bounded_rows=[])
        query = engine.query("SELECT * FROM S")
        with pytest.raises(ExecutionError, match="no source registered"):
            Dataflow(query.plan, {})

    def test_union_all(self):
        engine = make_engine(bounded_rows=[(1, 10, "a")])
        rel = engine.query(
            "SELECT v FROM S UNION ALL SELECT v + 1 FROM S"
        ).table()
        assert sorted(rel.tuples) == [(10,), (11,)]

    def test_order_by_limit(self):
        engine = make_engine(bounded_rows=[(1, 3, "a"), (2, 1, "b"), (3, 2, "c")])
        rel = engine.query("SELECT v FROM S ORDER BY v DESC LIMIT 2").table()
        assert rel.tuples == [(3,), (2,)]

    def test_distinct(self):
        engine = make_engine(bounded_rows=[(1, 5, "a"), (2, 5, "a"), (3, 6, "b")])
        rel = engine.query("SELECT DISTINCT v FROM S").table()
        assert sorted(rel.tuples) == [(5,), (6,)]

    def test_events_must_arrive_in_order(self):
        engine = make_engine(bounded_rows=[])
        dataflow = engine.query("SELECT * FROM S").dataflow()
        from repro.core.tvr import ins

        dataflow.process(ins(10, (1, 1, "a")), "S")
        with pytest.raises(ExecutionError, match="processing-time order"):
            dataflow.process(ins(5, (1, 1, "a")), "S")


class TestSharedSource:
    """One source consumed by several scans (Q7 reads Bid twice)."""

    def test_self_cross_join(self):
        engine = make_engine(bounded_rows=[(1, 1, "a"), (2, 2, "b")])
        rel = engine.query("SELECT x.v, y.v FROM S x, S y").table()
        assert len(rel) == 4

    def test_self_join_with_aggregate(self):
        engine = make_engine(bounded_rows=[(1, 5, "a"), (2, 9, "b")])
        rel = engine.query(
            "SELECT S.k FROM S, (SELECT MAX(v) m FROM S) mx WHERE S.v = mx.m"
        ).table()
        assert rel.tuples == [("b",)]


class TestWatermarkFlow:
    def test_root_watermark_track(self):
        from repro.core.tvr import ins, wm

        engine = make_engine(
            events=[
                wm(t("8:01"), t("8:00")),
                ins(t("8:02"), (t("8:01"), 1, "a")),
                wm(t("8:05"), t("8:04")),
            ]
        )
        result = engine.query("SELECT * FROM S").run()
        pairs = result.watermarks.as_pairs()
        assert pairs == [(t("8:01"), t("8:00")), (t("8:05"), t("8:04"))]

    def test_join_holds_back_watermark(self):
        """A two-input operator's watermark is the min of its inputs."""
        from repro.core.tvr import ins, wm

        engine = StreamEngine()
        a = TimeVaryingRelation(SCHEMA)
        b = TimeVaryingRelation(SCHEMA)
        a.advance_watermark(10, t("9:00"))
        b.advance_watermark(20, t("8:30"))
        engine.register_stream("A", a)
        engine.register_stream("B", b)
        result = engine.query("SELECT 1 FROM A, B").run()
        assert result.watermarks.current == t("8:30")

    def test_bounded_source_completes_immediately(self):
        engine = make_engine(bounded_rows=[(1, 1, "a")])
        result = engine.query("SELECT * FROM S").run()
        assert result.watermarks.current >= MAX_TIMESTAMP


class TestStateAccounting:
    def test_windowed_aggregation_state_bounded(self):
        """Watermarks free window state (the Section 5 lesson)."""
        from repro.core.tvr import ins, wm

        tvr = TimeVaryingRelation(SCHEMA)
        ptime = 0
        for i in range(100):
            ptime += 1000
            event_ts = ptime
            tvr.insert(ptime, (event_ts, i, "k"))
            if i % 10 == 9:
                tvr.advance_watermark(ptime, event_ts - 2000)
        engine = StreamEngine()
        engine.register_stream("S", tvr)
        sql = (
            "SELECT TB.wend, COUNT(*) c FROM Tumble(data => TABLE(S), "
            "timecol => DESCRIPTOR(ts), dur => INTERVAL '5' SECONDS) TB "
            "GROUP BY TB.wend"
        )
        dataflow = engine.query(sql).dataflow()
        for event in engine.source("S").events():
            dataflow.process(event, "S")
        # state retained is a couple of open windows, not all 100 rows
        assert dataflow.total_state_rows() < 20
        result = dataflow.result()
        assert result.peak_state_rows < 25

    def test_late_drop_counted(self):
        from repro.core.tvr import ins, wm

        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, (t("8:01"), 1, "a"))
        tvr.advance_watermark(2, t("8:30"))
        tvr.insert(3, (t("8:02"), 1, "late"))  # window long complete
        engine = StreamEngine()
        engine.register_stream("S", tvr)
        sql = (
            "SELECT TB.wend, COUNT(*) c FROM Tumble(data => TABLE(S), "
            "timecol => DESCRIPTOR(ts), dur => INTERVAL '10' MINUTES) TB "
            "GROUP BY TB.wend"
        )
        result = engine.query(sql).run()
        assert result.late_dropped == 1
        assert result.snapshot().tuples == [(t("8:10"), 1)]
