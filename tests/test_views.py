"""Tests for views: named queries expanded pointwise over TVRs (§6.1)."""

import pytest

from repro import StreamEngine
from repro.core.errors import ValidationError
from repro.core.times import t
from repro.nexmark import paper_bid_stream


@pytest.fixture
def engine():
    eng = StreamEngine()
    eng.register_stream("Bid", paper_bid_stream())
    eng.register_view(
        "WindowedBids",
        "SELECT TB.wstart, TB.wend, TB.price, TB.item FROM Tumble("
        "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
        "dur => INTERVAL '10' MINUTES) TB",
    )
    eng.register_view(
        "TopBids",
        "SELECT WB.wend, MAX(WB.price) AS maxPrice FROM WindowedBids WB "
        "GROUP BY WB.wend",
    )
    return eng


class TestViews:
    def test_view_queryable_as_table(self, engine):
        rel = engine.query("SELECT * FROM TopBids").table().sorted(["wend"])
        assert rel.tuples == [(t("8:10"), 5), (t("8:20"), 6)]

    def test_views_compose(self, engine):
        # TopBids is defined over the WindowedBids view
        rel = engine.query(
            "SELECT wend FROM TopBids WHERE maxPrice > 5"
        ).table()
        assert rel.tuples == [(t("8:20"),)]

    def test_view_is_a_tvr_emit_applies(self, engine):
        """The querying statement controls materialization, not the view."""
        out = engine.query(
            "SELECT * FROM TopBids EMIT STREAM AFTER WATERMARK"
        ).stream(until="8:21")
        assert [(c.values[1], c.ptime) for c in out] == [
            (5, t("8:16")),
            (6, t("8:21")),
        ]

    def test_view_joins_with_base_relation(self, engine):
        rel = engine.query(
            "SELECT B.item FROM Bid B, TopBids T "
            "WHERE B.price = T.maxPrice"
        ).table()
        assert sorted(r[0] for r in rel.tuples) == ["D", "F"]

    def test_point_in_time_snapshots(self, engine):
        rel = engine.query("SELECT * FROM TopBids").table(at="8:13")
        assert sorted(rel.tuples) == [(t("8:10"), 4), (t("8:20"), 3)]

    def test_view_with_emit_rejected(self, engine):
        with pytest.raises(ValidationError, match="EMIT"):
            engine.register_view("Bad", "SELECT * FROM Bid EMIT STREAM")

    def test_circular_views_rejected(self, engine):
        engine.register_view("A", "SELECT * FROM B")
        engine.register_view("B", "SELECT * FROM A")
        with pytest.raises(ValidationError, match="circular"):
            engine.query("SELECT * FROM A")

    def test_view_shadows_and_is_shadowed(self, engine):
        engine.register_view("Bid2", "SELECT price FROM Bid")
        assert len(engine.query("SELECT * FROM Bid2").table().schema) == 1
        # re-registering a base table replaces the view
        from repro.core.schema import Schema, int_col

        engine.register_table("Bid2", Schema([int_col("x")]), [(1,)])
        rel = engine.query("SELECT * FROM Bid2").table()
        assert rel.tuples == [(1,)]

    def test_unknown_name_message_lists_views(self, engine):
        with pytest.raises(ValidationError) as err:
            engine.query("SELECT * FROM Nope")
        assert "topbids" in str(err.value).lower()
