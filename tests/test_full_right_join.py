"""Tests for FULL and RIGHT OUTER JOINs."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine
from repro.core.changelog import Change, ChangeKind
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import t
from repro.exec.operators.outer_join import OuterJoinOperator

LEFT = Schema([int_col("lk"), string_col("lv")])
RIGHT = Schema([int_col("rk"), string_col("rv")])


def ins(values, ptime=0):
    return Change(ChangeKind.INSERT, tuple(values), ptime)


def rm(values, ptime=0):
    return Change(ChangeKind.RETRACT, tuple(values), ptime)


@pytest.fixture
def full_op():
    return OuterJoinOperator(
        LEFT.concat(RIGHT),
        left_width=2,
        right_width=2,
        condition=lambda row: row[0] == row[2],
        left_key=(0,),
        right_key=(0,),
        outer=(True, True),
    )


class TestFullJoinOperator:
    def test_both_sides_null_extend(self, full_op):
        (left_out,) = full_op.on_change(0, ins((1, "a")))
        assert left_out.values == (1, "a", None, None)
        (right_out,) = full_op.on_change(1, ins((2, "x")))
        assert right_out.values == (None, None, 2, "x")

    def test_match_withdraws_both_null_rows(self, full_op):
        full_op.on_change(0, ins((1, "a")))
        out = full_op.on_change(1, ins((1, "x")))
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.RETRACT, (1, "a", None, None)),
            (ChangeKind.INSERT, (1, "a", 1, "x")),
        ]

    def test_retraction_restores_null_rows_both_ways(self, full_op):
        full_op.on_change(0, ins((1, "a")))
        full_op.on_change(1, ins((1, "x")))
        out = full_op.on_change(0, rm((1, "a")))
        assert [(c.kind, c.values) for c in out] == [
            (ChangeKind.RETRACT, (1, "a", 1, "x")),
            (ChangeKind.INSERT, (None, None, 1, "x")),
        ]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["L+", "L-", "R+", "R-"]),
            st.integers(0, 2),
            st.sampled_from(["a", "b"]),
        ),
        max_size=30,
    )
)
def test_full_join_matches_batch(ops):
    op = OuterJoinOperator(
        LEFT.concat(RIGHT),
        left_width=2,
        right_width=2,
        condition=lambda row: row[0] == row[2],
        left_key=(0,),
        right_key=(0,),
        outer=(True, True),
    )
    left_bag: Counter = Counter()
    right_bag: Counter = Counter()
    folded: Counter = Counter()
    for kind, key, value in ops:
        row = (key, value)
        if kind == "L+":
            left_bag[row] += 1
            changes = op.on_change(0, ins(row))
        elif kind == "L-" and left_bag[row] > 0:
            left_bag[row] -= 1
            changes = op.on_change(0, rm(row))
        elif kind == "R+":
            right_bag[row] += 1
            changes = op.on_change(1, ins(row))
        elif kind == "R-" and right_bag[row] > 0:
            right_bag[row] -= 1
            changes = op.on_change(1, rm(row))
        else:
            continue
        for change in changes:
            folded[change.values] += change.delta
            assert folded[change.values] >= 0

    expected: Counter = Counter()
    for lrow, lcount in left_bag.items():
        if lcount <= 0:
            continue
        matches = [
            (rrow, rcount)
            for rrow, rcount in right_bag.items()
            if rrow[0] == lrow[0] and rcount > 0
        ]
        if not matches:
            expected[lrow + (None, None)] += lcount
        else:
            for rrow, rcount in matches:
                expected[lrow + rrow] += lcount * rcount
    for rrow, rcount in right_bag.items():
        if rcount <= 0:
            continue
        if not any(
            lrow[0] == rrow[0] and lcount > 0
            for lrow, lcount in left_bag.items()
        ):
            expected[(None, None) + rrow] += rcount
    assert +folded == +expected


class TestThroughSql:
    @pytest.fixture
    def engine(self):
        eng = StreamEngine()
        a_schema = Schema(
            [int_col("id"), string_col("name"),
             timestamp_col("ts", event_time=True)]
        )
        b_schema = Schema(
            [int_col("ref"), int_col("score"),
             timestamp_col("bt", event_time=True)]
        )
        eng.register_table(
            "A", a_schema, [(1, "one", t("8:00")), (2, "two", t("8:01"))]
        )
        eng.register_table(
            "B", b_schema, [(2, 20, t("8:02")), (3, 30, t("8:03"))]
        )
        return eng

    def test_full_join(self, engine):
        rel = engine.query(
            "SELECT A.name, B.score FROM A FULL JOIN B ON A.id = B.ref"
        ).table()
        assert sorted(rel.tuples, key=str) == sorted(
            [("one", None), ("two", 20), (None, 30)], key=str
        )

    def test_right_join(self, engine):
        rel = engine.query(
            "SELECT A.name, B.score FROM A RIGHT JOIN B ON A.id = B.ref"
        ).table()
        assert sorted(rel.tuples, key=str) == sorted(
            [("two", 20), (None, 30)], key=str
        )

    def test_right_join_column_order_restored(self, engine):
        rel = engine.query(
            "SELECT * FROM A RIGHT JOIN B ON A.id = B.ref"
        ).table()
        assert rel.schema.column_names()[:3] == ["id", "name", "ts"]

    def test_right_equals_mirrored_left(self, engine):
        right = engine.query(
            "SELECT A.name, B.score FROM A RIGHT JOIN B ON A.id = B.ref"
        ).table()
        left = engine.query(
            "SELECT A.name, B.score FROM B LEFT JOIN A ON A.id = B.ref"
        ).table()
        assert Counter(right.tuples) == Counter(left.tuples)
