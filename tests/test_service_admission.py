"""The admission gateway: structured rejection before planning.

Every rejection carries a distinct stable code, and — the invariant
these tests pin — a structurally rejected query (unknown table, ACL,
quota, parse error) never constructs a planner at all, while a
semantically rejected one never yields a retained plan.
"""

import pytest

from repro import StreamEngine
from repro.nexmark import paper_bid_stream
from repro.service import admission as admission_module
from repro.service import (
    AdmissionError,
    AdmissionGateway,
    StandingQueryService,
    TenantPolicy,
)

WINDOWED = (
    "SELECT TB.wend, MAX(TB.price) maxPrice "
    "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' MINUTES) TB GROUP BY TB.wend"
)


@pytest.fixture
def gateway(engine):
    return AdmissionGateway(engine._catalog, engine._registry)


def reject_code(gateway, tenant, sql, **kwargs):
    with pytest.raises(AdmissionError) as exc_info:
        gateway.admit(tenant, sql, **kwargs)
    return exc_info.value


class TestRejectionCodes:
    def test_parse_error(self, gateway):
        err = reject_code(gateway, "t", "SELEC broken FROM")
        assert err.code == "parse_error"

    def test_unknown_table(self, gateway):
        err = reject_code(gateway, "t", "SELECT * FROM Nope")
        assert err.code == "unknown_table"
        assert "nope" in err.detail

    def test_unknown_table_inside_join(self, gateway):
        err = reject_code(
            gateway, "t", "SELECT * FROM Bid b JOIN Missing m ON b.price = m.x"
        )
        assert err.code == "unknown_table"

    def test_unknown_column(self, gateway):
        err = reject_code(gateway, "t", "SELECT nosuch FROM Bid")
        assert err.code == "unknown_column"

    def test_type_mismatch(self, gateway):
        err = reject_code(gateway, "t", "SELECT price + item FROM Bid")
        assert err.code == "type_mismatch"

    def test_acl_denied(self, gateway):
        gateway.set_policy(
            TenantPolicy(name="restricted", allowed_tables=frozenset())
        )
        err = reject_code(gateway, "restricted", "SELECT * FROM Bid")
        assert err.code == "acl_denied"
        assert "bid" in err.detail

    def test_unprovisioned_tenant(self, engine):
        gateway = AdmissionGateway(
            engine._catalog, engine._registry, default_policy=None
        )
        err = reject_code(gateway, "stranger", "SELECT * FROM Bid")
        assert err.code == "acl_denied"
        assert "not provisioned" in err.detail

    def test_quota_queries(self, gateway):
        gateway.set_policy(TenantPolicy(name="t", max_standing_queries=2))
        err = reject_code(gateway, "t", "SELECT * FROM Bid", active_queries=2)
        assert err.code == "quota_queries"

    def test_quota_state(self, gateway):
        gateway.set_policy(TenantPolicy(name="t", max_state_rows=100))
        err = reject_code(gateway, "t", "SELECT * FROM Bid", state_rows=100)
        assert err.code == "quota_state"

    def test_admitted_query_returns_plan(self, gateway):
        plan = gateway.admit("t", WINDOWED)
        assert plan.schema.column_names() == ["wend", "maxPrice"]
        assert gateway.plans_built == 1

    def test_as_dict_is_the_wire_shape(self, gateway):
        err = reject_code(gateway, "alice", "SELECT * FROM Nope")
        payload = err.as_dict()
        assert payload["code"] == "unknown_table"
        assert payload["tenant"] == "alice"
        assert "nope" in payload["detail"]

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError):
            AdmissionError("not_a_code", "t", "detail")


class TestNeverReachesThePlanner:
    """Structural rejections must not even construct a Planner."""

    @pytest.fixture
    def tripwire(self, monkeypatch):
        def explode(*args, **kwargs):  # pragma: no cover — must not run
            raise AssertionError("Planner constructed for a rejected query")

        monkeypatch.setattr(admission_module, "Planner", explode)

    def test_parse_error_skips_planner(self, gateway, tripwire):
        assert reject_code(gateway, "t", "SELEC").code == "parse_error"

    def test_unknown_table_skips_planner(self, gateway, tripwire):
        assert reject_code(gateway, "t", "SELECT * FROM Nope").code == (
            "unknown_table"
        )

    def test_acl_skips_planner(self, gateway, tripwire):
        gateway.set_policy(
            TenantPolicy(name="r", allowed_tables=frozenset({"other"}))
        )
        assert reject_code(gateway, "r", "SELECT * FROM Bid").code == (
            "acl_denied"
        )

    def test_quota_skips_planner(self, gateway, tripwire):
        gateway.set_policy(TenantPolicy(name="t", max_standing_queries=0))
        assert reject_code(gateway, "t", "SELECT * FROM Bid").code == (
            "quota_queries"
        )

    def test_plans_built_untouched_by_any_rejection(self, gateway):
        gateway.set_policy(
            TenantPolicy(name="locked", allowed_tables=frozenset())
        )
        for tenant, sql in [
            ("t", "SELEC"),
            ("t", "SELECT * FROM Nope"),
            ("locked", "SELECT * FROM Bid"),
            ("t", "SELECT nosuch FROM Bid"),
            ("t", "SELECT price + item FROM Bid"),
        ]:
            with pytest.raises(AdmissionError):
                gateway.admit(tenant, sql)
        assert gateway.plans_built == 0


class TestTenantPolicy:
    def test_allowed_tables_are_case_insensitive(self):
        policy = TenantPolicy(name="t", allowed_tables=frozenset({"BID"}))
        assert policy.may_read("bid")
        assert policy.may_read("Bid")
        assert not policy.may_read("auction")

    def test_none_means_unrestricted(self):
        assert TenantPolicy(name="t").may_read("anything")

    def test_from_dict(self):
        policy = TenantPolicy.from_dict(
            {
                "name": "alice",
                "allowed_tables": ["Bid"],
                "max_standing_queries": 3,
            }
        )
        assert policy.name == "alice"
        assert policy.may_read("bid") and not policy.may_read("x")
        assert policy.max_standing_queries == 3
        assert policy.max_state_rows == 100_000

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            TenantPolicy(name="t", max_standing_queries=-1)


class TestServiceFrontDoor:
    """The composed service records rejects and enforces usage quotas."""

    @pytest.fixture
    def service(self, bid_stream):
        svc = StandingQueryService()
        svc.register_stream("Bid", bid_stream)
        return svc

    def test_rejects_are_counted_by_code(self, service):
        for sql in ["SELEC", "SELECT * FROM Nope", "SELECT nosuch FROM Bid"]:
            with pytest.raises(AdmissionError):
                service.submit("t", sql)
        assert service.metrics.rejects["parse_error"] == 1
        assert service.metrics.rejects["unknown_table"] == 1
        assert service.metrics.rejects["unknown_column"] == 1
        assert service.metrics.rejected_total == 3
        assert service.metrics.admitted == 0

    def test_query_quota_enforced_through_usage(self, service):
        service.gateway.set_policy(
            TenantPolicy(name="small", max_standing_queries=1)
        )
        service.submit("small", WINDOWED)
        with pytest.raises(AdmissionError) as exc_info:
            service.submit("small", WINDOWED)
        assert exc_info.value.code == "quota_queries"
        # another tenant is unaffected
        service.submit("other", WINDOWED)
        assert service.metrics.admitted == 2

    def test_views_expand_for_acl_checks(self, service):
        service.engine.register_view("Best", WINDOWED)
        service.gateway.set_policy(
            TenantPolicy(name="narrow", allowed_tables=frozenset({"best"}))
        )
        # the view itself is allowed, but its underlying table is not
        with pytest.raises(AdmissionError) as exc_info:
            service.submit("narrow", "SELECT * FROM Best")
        assert exc_info.value.code == "acl_denied"
