"""Multi-query optimization: shared-subplan DAG execution.

Three layers under test, mirroring docs/MQO.md:

* canonical plan fingerprints (``repro.plan.fingerprint``) — alias-
  invariant, but never merging plans that differ in window spec,
  aggregate, source, or EMIT clause;
* the session-level :class:`~repro.service.session.SharedPlanCache` —
  overlapping standing queries graft onto one dataflow, the shared
  prefix runs once per ingested event, and withdrawing one sharer
  leaves the survivors' operator state untouched;
* the load-bearing equivalence: every subscriber's delta stream is
  **byte-identical** (values, ``ptime``, undo/ver metadata, ordering)
  with sharing on or off, serial and sharded, across
  checkpoint/restore.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.exec.operators.stateless import ScanOperator
from repro.plan import node_fingerprint, plan_fingerprint
from repro.service import StandingQueryService
from repro.service.session import SharedPlanCache

MINUTE = 60_000

SCHEMA = Schema([int_col("k"), timestamp_col("ts", event_time=True), int_col("v")])

TUMBLE = (
    "Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE)"
)

Q_SUM = (
    f"SELECT k, wend, SUM(v) AS total FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM"
)
#: Q_SUM with different output aliases only — must fingerprint equal.
Q_SUM_ALIASED = (
    f"SELECT k, wend, SUM(v) AS sum_of_v FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM"
)
#: same window prefix, different aggregate — shares the window subtree.
Q_MAX = (
    f"SELECT k, wend, MAX(v) AS mx FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM"
)
#: 3-minute window: same shape, different spec — must NOT merge.
Q_SUM_3MIN = (
    "SELECT k, wend, SUM(v) AS total FROM Tumble(data => TABLE(S), "
    "timecol => DESCRIPTOR(ts), dur => INTERVAL '3' MINUTE) TS "
    "GROUP BY k, wend EMIT STREAM"
)
Q_SUM_TABLE = (
    f"SELECT k, wend, SUM(v) AS total FROM {TUMBLE} TS GROUP BY k, wend"
)

QUERY_POOL = [Q_SUM, Q_SUM_ALIASED, Q_MAX, Q_SUM_3MIN]


def make_events(n, start=1_000_000):
    """A deterministic keyed stream with periodic watermarks."""
    events, ptime, wm_value = [], start, 0
    for i in range(n):
        ptime += 15_000
        if i % 5 == 4:
            wm_value += 2 * MINUTE
            events.append(wm(ptime, wm_value))
        else:
            events.append(ins(ptime, (i % 3, (i * 37_000) % (10 * MINUTE), i)))
    return events


def service_with_source(config=None, max_queries=8):
    from repro.service.admission import TenantPolicy

    svc = StandingQueryService(
        config=config,
        default_policy=TenantPolicy(name="*", max_standing_queries=max_queries),
    )
    svc.register_stream("S", TimeVaryingRelation(SCHEMA))
    return svc


def oneshot_changes(events, sql, parallelism=1):
    eng = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend="sync")
    )
    eng.register_stream("S", TimeVaryingRelation(SCHEMA, events))
    return eng.query(sql).run().changes


def query_changes(query):
    return query.flow.output_slice_of(query.output_id, 0)


class TestFingerprints:
    def plan_for(self, sql):
        svc = service_with_source()
        return svc.gateway.admit("t", sql)

    def test_column_aliases_do_not_change_the_fingerprint(self):
        assert plan_fingerprint(self.plan_for(Q_SUM)) == plan_fingerprint(
            self.plan_for(Q_SUM_ALIASED)
        )

    def test_aggregate_function_changes_the_fingerprint(self):
        assert plan_fingerprint(self.plan_for(Q_SUM)) != plan_fingerprint(
            self.plan_for(Q_MAX)
        )

    def test_window_size_changes_the_fingerprint(self):
        assert plan_fingerprint(self.plan_for(Q_SUM)) != plan_fingerprint(
            self.plan_for(Q_SUM_3MIN)
        )

    def test_source_identity_changes_the_fingerprint(self):
        svc = StandingQueryService()
        svc.register_stream("S", TimeVaryingRelation(SCHEMA))
        svc.register_stream("S2", TimeVaryingRelation(SCHEMA))
        a = svc.gateway.admit("t", Q_SUM)
        b = svc.gateway.admit("t", Q_SUM.replace("TABLE(S)", "TABLE(S2)"))
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_emit_clause_splits_plan_but_not_root_node(self):
        stream = self.plan_for(Q_SUM)
        table = self.plan_for(Q_SUM_TABLE)
        assert node_fingerprint(stream.root) == node_fingerprint(table.root)
        assert plan_fingerprint(stream) != plan_fingerprint(table)

    def test_lateness_gates_sharing_through_the_config_key(self):
        plan = self.plan_for(Q_SUM)
        base = ExecutionConfig().resolved()
        late = ExecutionConfig(allowed_lateness=MINUTE).resolved()
        assert SharedPlanCache.config_key(plan, base) != (
            SharedPlanCache.config_key(plan, late)
        )


class TestSharing:
    def test_identical_queries_share_one_flow(self):
        svc = service_with_source()
        q1 = svc.submit("alice", Q_SUM)
        q2 = svc.submit("bob", Q_SUM_ALIASED)
        assert q1.flow is q2.flow
        assert q1.flow.shared_operator_count() == (
            q1.flow.resident_operator_count()
        )
        assert q2.describe()["shared_with"] == [q1.query_id]
        assert len(svc.session.plan_cache.records) == 1

    def test_share_plans_off_builds_private_flows(self):
        svc = service_with_source(config=ExecutionConfig(share_plans=False))
        q1 = svc.submit("alice", Q_SUM)
        q2 = svc.submit("bob", Q_SUM)
        assert q1.flow is not q2.flow
        assert svc.session.shared_subplans() == 0

    def test_sixteen_sharing_queries_run_the_shared_subplan_once(self):
        """The acceptance criterion: one scan execution per ingest,
        however many standing queries read through it."""
        svc = service_with_source(max_queries=32)
        queries = [svc.submit("t", Q_SUM) for _ in range(16)]
        flow = queries[0].flow
        assert all(q.flow is flow for q in queries)
        solo = service_with_source().submit("t", Q_SUM)
        assert flow.resident_operator_count() == (
            solo.flow.resident_operator_count()
        )
        events = make_events(40)
        from repro.core.tvr import RowEvent

        rows = sum(1 for e in events if isinstance(e, RowEvent))
        for event in events:
            svc.ingest(event, "S")
        scans = [op for op in flow.operators if isinstance(op, ScanOperator)]
        assert len(scans) == 1
        assert sum(scans[0].counters.rows_in) == rows  # once, not 16x

    def test_overlapping_prefix_shares_the_window_subtree(self):
        svc = service_with_source()
        q_sum = svc.submit("alice", Q_SUM)
        q_max = svc.submit("bob", Q_MAX)
        assert q_sum.flow is q_max.flow
        shared = q_sum.flow.shared_operator_count()
        assert 1 <= shared < q_sum.flow.resident_operator_count()
        events = make_events(40)
        for event in events:
            svc.ingest(event, "S")
        assert query_changes(q_sum) == oneshot_changes(events, Q_SUM)
        assert query_changes(q_max) == oneshot_changes(events, Q_MAX)

    def test_different_window_spec_never_merges(self):
        svc = service_with_source()
        q1 = svc.submit("alice", Q_SUM)
        q2 = svc.submit("bob", Q_SUM_3MIN)
        # The scan leaf still matches, so the flows may share it — but
        # the window operators must stay distinct.
        if q1.flow is q2.flow:
            assert q1.flow.resident_operator_count() > (
                service_with_source()
                .submit("t", Q_SUM)
                .flow.resident_operator_count()
            )
        events = make_events(40)
        for event in events:
            svc.ingest(event, "S")
        assert query_changes(q1) == oneshot_changes(events, Q_SUM)
        assert query_changes(q2) == oneshot_changes(events, Q_SUM_3MIN)

    def test_lateness_mismatch_blocks_sharing(self):
        svc = service_with_source()
        q1 = svc.submit("alice", Q_SUM)
        q2 = svc.submit(
            "bob", Q_SUM, config=ExecutionConfig(allowed_lateness=MINUTE)
        )
        assert q1.flow is not q2.flow

    def test_late_joiner_catches_up_through_the_donor(self):
        """A query submitted mid-stream grafts on with transplanted
        state and history, and stays byte-equal from then on."""
        events = make_events(60)
        svc = service_with_source()
        q1 = svc.submit("alice", Q_SUM)
        for event in events[:30]:
            svc.ingest(event, "S")
        q2 = svc.submit("bob", Q_MAX)
        assert q2.flow is q1.flow
        for event in events[30:]:
            svc.ingest(event, "S")
        assert query_changes(q1) == oneshot_changes(events, Q_SUM)
        assert query_changes(q2) == oneshot_changes(events, Q_MAX)


class TestWithdrawal:
    def test_withdrawing_one_sharer_preserves_the_survivor(self):
        """The regression this PR fixes: teardown of a withdrawn query
        must not reset shared operator state under the survivor."""
        events = make_events(60)
        svc = service_with_source()
        q1 = svc.submit("alice", Q_SUM)
        q2 = svc.submit("bob", Q_SUM_ALIASED)
        assert q1.flow is q2.flow
        for event in events[:30]:
            svc.ingest(event, "S")
        assert svc.withdraw(q1.query_id)
        for event in events[30:]:
            svc.ingest(event, "S")
        assert query_changes(q2) == oneshot_changes(events, Q_SUM_ALIASED)

    def test_withdrawing_an_interior_sharer_preserves_the_survivor(self):
        events = make_events(60)
        svc = service_with_source()
        q_sum = svc.submit("alice", Q_SUM)
        q_max = svc.submit("bob", Q_MAX)
        flow = q_max.flow
        before = flow.resident_operator_count()
        for event in events[:30]:
            svc.ingest(event, "S")
        assert svc.withdraw(q_sum.query_id)
        # the private suffix of the withdrawn query is gone, the shared
        # prefix survives with its refcount back at one
        assert flow.resident_operator_count() < before
        assert flow.shared_operator_count() == 0
        for event in events[30:]:
            svc.ingest(event, "S")
        assert query_changes(q_max) == oneshot_changes(events, Q_MAX)

    def test_withdrawing_every_member_drops_the_flow(self):
        svc = service_with_source()
        q1 = svc.submit("alice", Q_SUM)
        q2 = svc.submit("bob", Q_SUM)
        svc.withdraw(q1.query_id)
        svc.withdraw(q2.query_id)
        assert svc.session.plan_cache.records == []


@st.composite
def event_histories(draw):
    """A random keyed stream: rows with jittered event times + watermarks."""
    steps = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=-3, max_value=3),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=40,
        )
    )
    events = []
    ptime = 1_000_000
    wm_value = 0
    for is_row, a, b, c in steps:
        ptime += MINUTE // 4
        if is_row:
            events.append(ins(ptime, (a, max(0, wm_value + b * MINUTE), c)))
        else:
            wm_value += a * MINUTE
            events.append(wm(ptime, wm_value))
    return events


class TestShareEquivalence:
    """The invariant: shared == unshared, byte for byte."""

    @settings(max_examples=15, deadline=None)
    @given(
        events=event_histories(),
        parallelism=st.sampled_from([1, 2]),
        split=st.integers(min_value=0, max_value=40),
    )
    def test_shared_deltas_equal_unshared_deltas(
        self, events, parallelism, split
    ):
        config = ExecutionConfig(parallelism=parallelism, backend="sync")
        shared = service_with_source(config=config)
        unshared = service_with_source(
            config=ExecutionConfig(
                parallelism=parallelism, backend="sync", share_plans=False
            )
        )
        split = min(split, len(events))
        # stagger admissions across the stream so donor transplants and
        # cold starts are both exercised
        first, rest = QUERY_POOL[:2], QUERY_POOL[2:]
        pairs = []
        for sql in first:
            pairs.append((shared.submit("t", sql), unshared.submit("t", sql)))
        for event in events[:split]:
            shared.ingest(event, "S")
            unshared.ingest(event, "S")
        for sql in rest:
            pairs.append((shared.submit("t", sql), unshared.submit("t", sql)))
        for event in events[split:]:
            shared.ingest(event, "S")
            unshared.ingest(event, "S")
        for q_shared, q_unshared in pairs:
            assert query_changes(q_shared) == query_changes(q_unshared)


class TestSharingDurability:
    def run_checkpoint_cycle(self, tmp_path, parallelism):
        directory = str(tmp_path / "ckpt")
        config = ExecutionConfig(
            parallelism=parallelism, backend="sync", checkpoint_dir=directory
        )
        events = make_events(60)
        svc = service_with_source(config=config)
        ids = [
            svc.submit("alice", Q_SUM).query_id,
            svc.submit("bob", Q_SUM_ALIASED).query_id,
            svc.submit("carol", Q_MAX).query_id,
        ]
        for event in events[:30]:
            svc.ingest(event, "S")
        svc.checkpoint()

        with open(os.path.join(directory, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert ids[0] in {entry["id"] for entry in manifest["flows"]}
        (entry,) = [e for e in manifest["flows"] if e["id"] == ids[0]]
        assert set(entry["members"]) >= {ids[0], ids[1]}
        assert set(entry["sharing"]) == set(entry["members"])

        resumed = StandingQueryService(config=config)
        count = resumed.resume()
        assert count == 3
        q1, q2, q3 = (resumed.session.get(i) for i in ids)
        assert q1.flow is q2.flow  # sharing structure survived restore
        for event in events[30:]:
            resumed.ingest(event, "S")
        assert query_changes(q1) == oneshot_changes(events, Q_SUM)
        assert query_changes(q2) == oneshot_changes(events, Q_SUM_ALIASED)
        assert query_changes(q3) == oneshot_changes(events, Q_MAX)

    def test_serial_restore_preserves_sharing_and_equivalence(self, tmp_path):
        self.run_checkpoint_cycle(tmp_path, parallelism=1)

    def test_sharded_restore_preserves_sharing_and_equivalence(self, tmp_path):
        self.run_checkpoint_cycle(tmp_path, parallelism=2)


class TestObservability:
    def test_scrape_exposes_sharing_families(self):
        from repro.obs.export import parse_exposition

        svc = service_with_source()
        svc.submit("alice", Q_SUM)
        svc.submit("bob", Q_SUM)
        text = svc.scrape()
        families = parse_exposition(text)
        assert "repro_service_shared_subplans" in families
        assert "repro_service_sharing_ratio" in families
        assert svc.session.shared_subplans() > 0
        assert svc.session.sharing_ratio() == pytest.approx(2.0)
        assert (
            f"repro_service_shared_subplans {svc.session.shared_subplans()}"
            in text
        )

    def test_metrics_report_annotates_shared_operators(self):
        svc = service_with_source()
        q1 = svc.submit("alice", Q_SUM)
        svc.submit("bob", Q_SUM)
        for event in make_events(20):
            svc.ingest(event, "S")
        rendered = q1.flow.metrics_report(q1.output_id).render()
        assert "[shared ×2]" in rendered
