"""Unit + property tests for changelogs and the stream/table duality."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.changelog import (
    Change,
    ChangeKind,
    Changelog,
    UpsertKind,
    diff_bags,
    to_upserts,
    upserts_to_changes,
)
from repro.core.errors import ExecutionError
from repro.core.schema import Schema, int_col, string_col


def ins(values, ptime):
    return Change(ChangeKind.INSERT, values, ptime)


def rm(values, ptime):
    return Change(ChangeKind.RETRACT, values, ptime)


class TestChange:
    def test_delta(self):
        assert ins(("a",), 1).delta == 1
        assert rm(("a",), 1).delta == -1

    def test_inverted(self):
        change = ins(("a",), 5)
        assert change.inverted() == rm(("a",), 5)
        assert change.inverted().inverted() == change

    def test_restamp(self):
        assert ins(("a",), 5).at(9).ptime == 9


class TestChangelog:
    def test_ptime_monotonic(self):
        log = Changelog([ins(("a",), 5)])
        with pytest.raises(ExecutionError):
            log.append(ins(("b",), 4))

    def test_bag_at_respects_ptime(self):
        log = Changelog([ins(("a",), 1), ins(("b",), 2), rm(("a",), 3)])
        assert log.bag_at(1) == Counter({("a",): 1})
        assert log.bag_at(2) == Counter({("a",): 1, ("b",): 1})
        assert log.bag_at(3) == Counter({("b",): 1})

    def test_negative_multiplicity_detected(self):
        log = Changelog([rm(("ghost",), 1)])
        with pytest.raises(ExecutionError, match="never inserted"):
            log.bag_at(1)

    def test_snapshot(self):
        schema = Schema([string_col("x")])
        log = Changelog([ins(("a",), 1), ins(("a",), 2)])
        rel = log.snapshot_at(schema, 5)
        assert len(rel) == 2

    def test_changes_between(self):
        log = Changelog([ins(("a",), 1), ins(("b",), 3), ins(("c",), 5)])
        assert [c.values for c in log.changes_between(1, 5)] == [("b",), ("c",)]


class TestDiffBags:
    def test_retracts_before_inserts(self):
        before = Counter({("old",): 1})
        after = Counter({("new",): 1})
        changes = diff_bags(before, after, 7)
        assert [c.kind for c in changes] == [ChangeKind.RETRACT, ChangeKind.INSERT]
        assert all(c.ptime == 7 for c in changes)

    def test_multiplicity(self):
        changes = diff_bags(Counter({("x",): 1}), Counter({("x",): 3}), 0)
        assert len(changes) == 2
        assert all(c.is_insert for c in changes)

    def test_no_diff(self):
        bag = Counter({("x",): 2})
        assert diff_bags(bag, Counter(bag), 0) == []

    @given(
        st.dictionaries(st.integers(0, 5), st.integers(1, 3)),
        st.dictionaries(st.integers(0, 5), st.integers(1, 3)),
    )
    def test_applying_diff_reaches_target(self, before_d, after_d):
        before = Counter({(k,): v for k, v in before_d.items()})
        after = Counter({(k,): v for k, v in after_d.items()})
        bag = Counter(before)
        for change in diff_bags(before, after, 0):
            bag[change.values] += change.delta
            assert bag[change.values] >= 0  # never transiently negative
        assert +bag == +after


class TestUpsertEncoding:
    def test_update_fuses_to_single_upsert(self):
        # retract+insert with the same key at the same instant = UPDATE
        changes = [
            ins((1, "a"), 1),
            rm((1, "a"), 2),
            ins((1, "b"), 2),
        ]
        upserts = to_upserts(changes, key_indices=[0])
        assert [u.kind for u in upserts] == [UpsertKind.UPSERT, UpsertKind.UPSERT]
        assert upserts[1].values == (1, "b")

    def test_delete_survives(self):
        changes = [ins((1, "a"), 1), rm((1, "a"), 2)]
        upserts = to_upserts(changes, key_indices=[0])
        assert [u.kind for u in upserts] == [UpsertKind.UPSERT, UpsertKind.DELETE]

    def test_round_trip(self):
        changes = [
            ins((1, "a"), 1),
            ins((2, "x"), 1),
            rm((1, "a"), 3),
            ins((1, "b"), 3),
            rm((2, "x"), 4),
        ]
        decoded = upserts_to_changes(to_upserts(changes, key_indices=[0]))
        # final states agree
        final = Counter()
        for c in changes:
            final[c.values] += c.delta
        final_decoded = Counter()
        for c in decoded:
            final_decoded[c.values] += c.delta
        assert +final == +final_decoded

    def test_upserts_never_longer_than_retractions(self):
        changes = [
            ins((i % 3, i), i) for i in range(10)
        ]  # violates uniqueness -> error expected below on conflicting keys
        # use unique keys instead
        changes = []
        ptime = 0
        for version in range(5):
            if version:
                changes.append(rm((1, version - 1), ptime))
            changes.append(ins((1, version), ptime))
            ptime += 1
        upserts = to_upserts(changes, key_indices=[0])
        assert len(upserts) < len(changes)

    def test_duplicate_live_key_rejected(self):
        changes = [ins((1, "a"), 1), ins((1, "b"), 1), rm((1, "a"), 2), rm((1, "b"), 2)]
        with pytest.raises(ExecutionError):
            to_upserts(changes, key_indices=[0])

    def test_delete_unknown_key_rejected(self):
        from repro.core.changelog import Upsert

        with pytest.raises(ExecutionError):
            upserts_to_changes([Upsert(UpsertKind.DELETE, (1,), (1, "x"), 0)])
