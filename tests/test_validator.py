"""Unit tests for name resolution and expression typing."""

import pytest

from repro.core.errors import ValidationError
from repro.core.schema import (
    Schema,
    SqlType,
    float_col,
    int_col,
    string_col,
    timestamp_col,
)
from repro.plan import rex
from repro.sql.functions import default_registry
from repro.sql.parser import parse_expression
from repro.sql.validator import ExprTranslator, Scope, ScopeEntry

BID = Schema(
    [
        timestamp_col("bidtime", event_time=True),
        int_col("price"),
        string_col("item"),
        float_col("rate"),
    ]
)
OTHER = Schema([int_col("price"), string_col("tag")])


@pytest.fixture
def scope():
    return Scope(
        [
            ScopeEntry("b", BID, 0),
            ScopeEntry("o", OTHER, len(BID)),
        ]
    )


@pytest.fixture
def translator(scope):
    return ExprTranslator(scope, default_registry())


def translate(translator, text):
    return translator.translate(parse_expression(text))


class TestScope:
    def test_qualified_resolution(self, scope):
        ordinal, column = scope.resolve(("o", "price"))
        assert ordinal == 4
        assert column.name == "price"

    def test_unqualified_unique(self, scope):
        ordinal, _ = scope.resolve(("item",))
        assert ordinal == 2

    def test_unqualified_ambiguous(self, scope):
        with pytest.raises(ValidationError, match="ambiguous"):
            scope.resolve(("price",))

    def test_unknown_alias_and_column(self, scope):
        with pytest.raises(ValidationError, match="unknown table alias"):
            scope.resolve(("zz", "price"))
        with pytest.raises(ValidationError, match="has no column"):
            scope.resolve(("b", "zz"))
        with pytest.raises(ValidationError, match="unknown column"):
            scope.resolve(("zz",))

    def test_star_expansion(self, scope):
        assert scope.expand_star(None) == list(range(6))
        assert scope.expand_star("o") == [4, 5]
        with pytest.raises(ValidationError):
            scope.expand_star("zz")

    def test_column_at(self, scope):
        assert scope.column_at(5).name == "tag"
        with pytest.raises(ValidationError):
            scope.column_at(99)


class TestTyping:
    def test_timestamp_arithmetic(self, translator):
        out = translate(translator, "b.bidtime + INTERVAL '1' MINUTE")
        assert out.type is SqlType.TIMESTAMP
        out = translate(translator, "b.bidtime - b.bidtime")
        assert out.type is SqlType.INTERVAL
        out = translate(translator, "INTERVAL '1' MINUTE + INTERVAL '2' MINUTE")
        assert out.type is SqlType.INTERVAL

    def test_interval_scaling(self, translator):
        out = translate(translator, "INTERVAL '1' MINUTE * 3")
        assert out.type is SqlType.INTERVAL

    def test_numeric_promotion(self, translator):
        assert translate(translator, "b.price + 1").type is SqlType.INT
        assert translate(translator, "b.price + 1.5").type is SqlType.FLOAT
        assert translate(translator, "b.price + b.rate").type is SqlType.FLOAT

    def test_integer_vs_float_division(self, translator):
        assert translate(translator, "b.price / 2").type is SqlType.INT
        assert translate(translator, "b.rate / 2").type is SqlType.FLOAT

    def test_comparison_types(self, translator):
        assert translate(translator, "b.price > 1").type is SqlType.BOOL
        with pytest.raises(ValidationError, match="cannot compare"):
            translate(translator, "b.item > 1")

    def test_boolean_operands_checked(self, translator):
        with pytest.raises(ValidationError, match="BOOLEAN"):
            translate(translator, "b.price AND b.price > 1")
        with pytest.raises(ValidationError, match="BOOLEAN"):
            translate(translator, "NOT b.price")

    def test_negation_types(self, translator):
        assert translate(translator, "-b.price").type is SqlType.INT
        with pytest.raises(ValidationError, match="negate"):
            translate(translator, "-b.item")

    def test_like_requires_strings(self, translator):
        with pytest.raises(ValidationError, match="LIKE"):
            translate(translator, "b.price LIKE 'x%'")

    def test_case_result_type(self, translator):
        out = translate(
            translator, "CASE WHEN b.price > 1 THEN 'hi' ELSE 'lo' END"
        )
        assert out.type is SqlType.STRING

    def test_cast_types(self, translator):
        assert translate(translator, "CAST(b.price AS DOUBLE)").type is SqlType.FLOAT
        with pytest.raises(ValidationError, match="unknown type"):
            translate(translator, "CAST(b.price AS BLOB)")

    def test_scalar_function_types(self, translator):
        assert translate(translator, "UPPER(b.item)").type is SqlType.STRING
        assert translate(translator, "ABS(b.price)").type is SqlType.INT
        assert translate(translator, "COALESCE(b.price, 0)").type is SqlType.INT

    def test_aggregate_rejected_outside_aggregation(self, translator):
        with pytest.raises(ValidationError, match="not allowed here"):
            translate(translator, "MAX(b.price)")

    def test_unary_minus_on_literal_folds(self, translator):
        out = translate(translator, "-5")
        assert isinstance(out, rex.RexLiteral)
        assert out.value == -5
