"""Live sources, the line-JSON server, the shell commands, the CLI.

The asyncio pieces run under ``asyncio.run`` inside ordinary pytest
functions, so no plugin is needed.
"""

import asyncio
import io
import json
import os

import pytest

from repro import ExecutionConfig, StreamEngine
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.io import format_jsonl, format_script
from repro.service import (
    LiveSource,
    ServiceServer,
    StandingQueryService,
    TailReader,
    pump,
)
from repro.shell import Shell

WINDOWED_MAX = (
    "SELECT TB.wend, MAX(TB.price) maxPrice "
    "FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' MINUTES) TB GROUP BY TB.wend EMIT STREAM"
)


def empty_service(bid_stream, config=None):
    svc = StandingQueryService(config=config)
    svc.register_stream("Bid", TimeVaryingRelation(bid_stream.schema))
    return svc


class TestTailReader:
    def test_reads_appended_chunks(self, bid_stream, tmp_path):
        path = tmp_path / "feed.jsonl"
        lines = format_jsonl(bid_stream).splitlines(keepends=True)
        reader = TailReader(str(path))
        assert reader.poll() == []  # file does not exist yet
        path.write_text("".join(lines[:3]))
        first = reader.poll()
        with open(path, "a") as handle:
            handle.write("".join(lines[3:]))
        rest = reader.poll() + reader.close()
        assert first + rest == bid_stream.events()

    def test_partial_final_line_buffers_until_complete(
        self, bid_stream, tmp_path
    ):
        path = tmp_path / "feed.script"
        lines = format_script(bid_stream).splitlines(keepends=True)
        reader = TailReader(str(path))
        path.write_text("".join(lines[:2]) + lines[2][:10])  # mid-write
        got = reader.poll()
        assert len(got) == 1  # the cut line stays buffered, no error
        with open(path, "a") as handle:
            handle.write(lines[2][10:] + "".join(lines[3:]))
        got += reader.poll() + reader.close()
        assert got == bid_stream.events()

    def test_skip_resumes_past_consumed_events(self, bid_stream, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(format_jsonl(bid_stream))
        reader = TailReader(str(path), skip=4)
        assert reader.poll() + reader.close() == bid_stream.events()[4:]


class TestPump:
    def test_merges_sources_by_ptime(self):
        a_events = [ins(100, (1,)), ins(300, (3,))]
        b_events = [ins(200, (2,)), ins(400, (4,))]

        async def drive():
            a, b = LiveSource("a"), LiveSource("b")
            order = []
            for source, events in ((a, a_events), (b, b_events)):
                for event in events:
                    await source.put(event)
                await source.end()
            dropped = await pump(
                [a, b], lambda event, name: order.append((event.ptime, name))
            )
            return order, dropped

        order, dropped = asyncio.run(drive())
        assert order == [(100, "a"), (200, "b"), (300, "a"), (400, "b")]
        assert dropped == 0

    def test_regressing_events_are_dropped_not_ingested(self):
        async def drive():
            source = LiveSource("s")
            for event in [ins(500, (1,)), ins(100, (2,)), ins(600, (3,))]:
                await source.put(event)
            await source.end()
            seen = []
            dropped = await pump(
                [source], lambda event, name: seen.append(event.ptime)
            )
            return seen, dropped

        seen, dropped = asyncio.run(drive())
        assert seen == [500, 600]
        assert dropped == 1


class TestServerProtocol:
    def run_session(self, service, script):
        """Start a server, run ``script(rpc, reader)``, return its result."""

        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)

            async def rpc(payload):
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            try:
                return await script(rpc, reader, server)
            finally:
                writer.close()
                await server.stop()

        return asyncio.run(drive())

    def test_submit_subscribe_ingest_stream(self, bid_stream):
        service = empty_service(bid_stream)
        feed_lines = [
            line
            for line in format_jsonl(bid_stream).splitlines()
            if "schema" not in line
        ]

        async def script(rpc, reader, server):
            admitted = await rpc(
                {"op": "submit", "tenant": "alice", "sql": WINDOWED_MAX}
            )
            assert admitted["ok"] and admitted["schema"] == ["wend", "maxPrice"]
            sub = await rpc(
                {"op": "subscribe", "query": admitted["query"],
                 "subscriber": "a1"}
            )
            assert sub["ok"] and sub["cursor"] == 0
            rejected = await rpc(
                {"op": "submit", "tenant": "bob", "sql": "SELECT * FROM Nope"}
            )
            assert not rejected["ok"]
            assert rejected["error"]["code"] == "unknown_table"

            deltas = []
            for line in feed_lines:
                await rpc({"op": "ingest", "source": "Bid", "event": line})
                while True:
                    try:
                        raw = await asyncio.wait_for(
                            reader.readline(), timeout=0.05
                        )
                    except asyncio.TimeoutError:
                        break
                    message = json.loads(raw)
                    if "delta" in message:
                        deltas.append(message["delta"])
            listing = await rpc({"op": "queries"})
            scrape = await rpc({"op": "metrics"})
            return deltas, listing, scrape

        deltas, listing, scrape = self.run_session(service, script)

        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        expected = eng.query(WINDOWED_MAX).run().changes
        assert [
            (d["ptime"], d["kind"], tuple(d["values"])) for d in deltas
        ] == [
            (
                c.ptime,
                "insert" if c.is_insert else "retract",
                tuple(c.values),
            )
            for c in expected
        ]
        assert [d["seq"] for d in deltas] == list(range(len(deltas)))

        assert listing["ok"] and len(listing["queries"]) == 1
        assert listing["queries"][0]["tenant"] == "alice"

        from repro.obs.export import parse_exposition

        families = parse_exposition(scrape["exposition"])
        text = scrape["exposition"]
        assert "repro_service_active_queries 1" in text
        assert 'repro_service_admission_rejects_total{code="unknown_table"} 1' in text
        assert f"repro_service_delivered_deltas_total" in text
        assert "repro_service_events_ingested_total" in text

    def test_unknown_op_and_bad_json(self, bid_stream):
        service = empty_service(bid_stream)

        async def script(rpc, reader, server):
            bad_op = await rpc({"op": "frobnicate"})
            ping = await rpc({"op": "ping"})
            return bad_op, ping

        bad_op, ping = self.run_session(service, script)
        assert not bad_op["ok"] and "unknown op" in bad_op["error"]["detail"]
        assert ping == {"ok": True}

    def test_live_tail_through_server(self, bid_stream, tmp_path):
        service = empty_service(bid_stream)
        path = tmp_path / "bids.jsonl"
        lines = format_jsonl(bid_stream).splitlines(keepends=True)
        path.write_text("".join(lines[: len(lines) // 2]))

        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            query = service.submit("alice", WINDOWED_MAX)
            subscriber = service.subscribe(query.query_id, "local")
            server.add_tail("Bid", str(path), poll_interval=0.01)
            server.start_pump()
            await asyncio.sleep(0.05)
            with open(path, "a") as handle:
                handle.write("".join(lines[len(lines) // 2 :]))
            await asyncio.sleep(0.1)
            server._follow = False
            await server.drain()
            await server.stop()
            return query, subscriber

        query, subscriber = asyncio.run(drive())
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        expected = eng.query(WINDOWED_MAX).run().changes
        assert query.flow.output_slice(0) == expected
        assert [d.change for d in subscriber.take()] == expected


class TestShellCommands:
    @pytest.fixture
    def loaded_shell(self, bid_stream, tmp_path):
        shell = Shell()
        schema_only = tmp_path / "schema.script"
        schema_only.write_text(
            format_script(bid_stream).splitlines(keepends=True)[0]
        )
        feed = tmp_path / "feed.jsonl"
        feed.write_text(format_jsonl(bid_stream))
        shell.feed(f"\\load Bid {schema_only}")
        return shell, str(feed)

    def test_subscribe_queries_pump_roundtrip(self, loaded_shell, bid_stream):
        shell, feed = loaded_shell
        out = shell.feed(f"\\subscribe alice {WINDOWED_MAX};")
        assert "admitted q1 for tenant alice" in out
        assert "(no standing queries)" not in shell.feed("\\queries")
        out = shell.feed(f"\\pump Bid {feed}")
        assert f"pumped {len(bid_stream.events())} events" in out
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        expected = eng.query(WINDOWED_MAX).run().changes
        # one printed line per delta, after the header
        assert len(out.splitlines()) == 1 + len(expected)

    def test_subscribe_rejection_is_reported(self, loaded_shell):
        shell, _ = loaded_shell
        out = shell.feed("\\subscribe bob SELECT * FROM Secrets;")
        assert out.startswith("rejected [unknown_table]")

    def test_queries_empty(self):
        assert Shell().feed("\\queries") == "(no standing queries)"

    def test_usage_lines(self):
        shell = Shell()
        assert "usage" in shell.feed("\\subscribe onlytenant")
        assert "usage" in shell.feed("\\pump onlyname")


class TestWatchInterrupt:
    def test_ctrl_c_restores_cursor_and_prints_final_frame(self, engine):
        shell = Shell(engine)
        sink = io.StringIO()
        shell.watch_sink = sink
        original = engine.query("SELECT * FROM Bid").dataflow().process

        calls = {"n": 0}

        from repro.exec.executor import Dataflow

        real_process = Dataflow.process

        def interrupting(self, event, source):
            calls["n"] += 1
            if calls["n"] == 4:
                raise KeyboardInterrupt
            return real_process(self, event, source)

        import repro.exec.executor as executor_module

        Dataflow.process = interrupting
        try:
            out = shell._command("\\watch SELECT * FROM Bid;")
        finally:
            Dataflow.process = real_process

        assert "(interrupted after" in out
        written = sink.getvalue()
        assert written.startswith("\x1b[?25l")  # cursor hidden for the run
        assert written.endswith("\x1b[?25h\x1b[0m")  # ...and restored

    def test_uninterrupted_watch_still_returns_final_frame(self, engine):
        shell = Shell(engine)
        sink = io.StringIO()
        shell.watch_sink = sink
        out = shell._command("\\watch SELECT * FROM Bid;")
        assert "(interrupted" not in out
        written = sink.getvalue()
        assert written.startswith("\x1b[?25l")
        assert written.endswith("\x1b[?25h\x1b[0m")


class TestServeCli:
    def test_build_serve_config_carries_service_fields(self):
        from repro.__main__ import build_config, build_serve_parser

        args = build_serve_parser().parse_args(
            [
                "--queue-capacity", "16",
                "--subscriber-capacity", "4",
                "--checkpoint-dir", "/tmp/ckpt",
                "--parallelism", "2",
            ]
        )
        config = build_config(args)
        assert config.queue_capacity == 16
        assert config.subscriber_capacity == 4
        assert config.checkpoint_dir == "/tmp/ckpt"
        assert config.parallelism == 2

    def test_register_recorded_bounded_vs_stream(self, bid_stream, tmp_path):
        from repro.__main__ import _register_recorded

        service = StandingQueryService()
        stream_path = tmp_path / "s.jsonl"
        stream_path.write_text(format_jsonl(bid_stream))
        count = _register_recorded(service, "Bid", str(stream_path))
        assert count == len(bid_stream.events())
        assert not service.engine.source("Bid").is_bounded

    def test_register_tail_schema_requires_schema_line(
        self, bid_stream, tmp_path
    ):
        from repro.__main__ import _register_tail_schema

        service = StandingQueryService()
        good = tmp_path / "good.jsonl"
        good.write_text(format_jsonl(bid_stream))
        _register_tail_schema(service, "Bid", str(good))
        assert service.engine.source("Bid").schema == bid_stream.schema

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ptime": 1, "insert": [1, 2, 3]}\n')
        with pytest.raises(SystemExit):
            _register_tail_schema(service, "Nope", str(bad))

    def test_load_policies_list_and_object_forms(self, tmp_path):
        from repro.__main__ import _load_policies

        as_list = tmp_path / "list.json"
        as_list.write_text(json.dumps([{"name": "alice"}]))
        policies, default = _load_policies(str(as_list))
        assert "alice" in policies and default is not None

        as_object = tmp_path / "object.json"
        as_object.write_text(
            json.dumps({"tenants": [{"name": "bob"}], "default": None})
        )
        policies, default = _load_policies(str(as_object))
        assert "bob" in policies and default is None


class TestTenantAuth:
    """Token mode closes the tenant-spoofing hole: with any token
    configured, the request's ``tenant`` field is only believed when it
    matches the connection's authenticated identity."""

    def auth_service(self, bid_stream):
        from repro.service.admission import TenantPolicy

        svc = StandingQueryService(
            policies={"alice": TenantPolicy(name="alice", token="s3cret")}
        )
        svc.register_stream("Bid", TimeVaryingRelation(bid_stream.schema))
        return svc

    def run_session(self, service, script):
        return TestServerProtocol().run_session(service, script)

    def test_unauthenticated_submit_is_rejected(self, bid_stream):
        service = self.auth_service(bid_stream)

        async def script(rpc, reader, server):
            return await rpc(
                {"op": "submit", "tenant": "alice", "sql": WINDOWED_MAX}
            )

        response = self.run_session(service, script)
        assert not response["ok"]
        assert response["error"]["code"] == "auth_denied"
        assert service.metrics.rejects["auth_denied"] == 1

    def test_wrong_token_is_rejected(self, bid_stream):
        service = self.auth_service(bid_stream)

        async def script(rpc, reader, server):
            return await rpc(
                {"op": "auth", "tenant": "alice", "token": "wrong"}
            )

        response = self.run_session(service, script)
        assert not response["ok"]
        assert response["error"]["code"] == "auth_denied"

    def test_tokenless_tenant_cannot_authenticate(self, bid_stream):
        service = self.auth_service(bid_stream)

        async def script(rpc, reader, server):
            return await rpc({"op": "auth", "tenant": "mallory", "token": ""})

        response = self.run_session(service, script)
        assert not response["ok"]
        assert response["error"]["code"] == "auth_denied"
        assert "no token configured" in response["error"]["detail"]

    def test_authenticated_submit_and_spoof_rejection(self, bid_stream):
        service = self.auth_service(bid_stream)

        async def script(rpc, reader, server):
            login = await rpc(
                {"op": "auth", "tenant": "alice", "token": "s3cret"}
            )
            own = await rpc(
                {"op": "submit", "tenant": "alice", "sql": WINDOWED_MAX}
            )
            spoofed = await rpc(
                {"op": "submit", "tenant": "bob", "sql": WINDOWED_MAX}
            )
            implicit = await rpc({"op": "submit", "sql": WINDOWED_MAX})
            return login, own, spoofed, implicit

        login, own, spoofed, implicit = self.run_session(service, script)
        assert login == {"ok": True, "tenant": "alice"}
        assert own["ok"]
        assert not spoofed["ok"]
        assert spoofed["error"]["code"] == "auth_denied"
        assert "does not match" in spoofed["error"]["detail"]
        assert implicit["ok"]  # no tenant claim: the session's identity
        queries = service.list_queries()
        assert {q["tenant"] for q in queries} == {"alice"}

    def test_auth_state_is_per_connection(self, bid_stream):
        service = self.auth_service(bid_stream)

        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            host, port = server.address

            async def rpc(reader, writer, payload):
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            r1, w1 = await asyncio.open_connection(host, port)
            r2, w2 = await asyncio.open_connection(host, port)
            try:
                await rpc(r1, w1, {"op": "auth", "tenant": "alice",
                                   "token": "s3cret"})
                other = await rpc(
                    r2, w2,
                    {"op": "submit", "tenant": "alice", "sql": WINDOWED_MAX},
                )
                return other
            finally:
                w1.close()
                w2.close()
                await server.stop()

        other = asyncio.run(drive())
        assert not other["ok"]
        assert other["error"]["code"] == "auth_denied"

    def test_policy_json_carries_tokens(self, tmp_path):
        from repro.__main__ import _load_policies

        path = tmp_path / "policies.json"
        path.write_text(json.dumps([{"name": "alice", "token": "s3cret"}]))
        policies, _ = _load_policies(str(path))
        assert policies["alice"].token == "s3cret"


class TestListenSource:
    def test_socket_feed_end_to_end(self, bid_stream):
        service = empty_service(bid_stream)
        feed_lines = [
            line
            for line in format_jsonl(bid_stream).splitlines()
            if "schema" not in line
        ]

        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            query = service.submit("alice", WINDOWED_MAX)
            subscriber = service.subscribe(query.query_id, "local")
            await server.listen_source("Bid", "127.0.0.1", 0)
            _, sock_server = server._socket_servers[-1]
            host, port = sock_server.sockets[0].getsockname()[:2]
            server.start_pump()
            reader, writer = await asyncio.open_connection(host, port)
            for line in feed_lines:
                writer.write((line + "\n").encode())
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.1)
            server._follow = False
            await server.drain()
            await server.stop()
            return query, subscriber

        query, subscriber = asyncio.run(drive())
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        expected = eng.query(WINDOWED_MAX).run().changes
        assert query.flow.output_slice(0) == expected
        assert [d.change for d in subscriber.take()] == expected

    def test_socket_and_tail_share_one_source(self, bid_stream, tmp_path):
        """A tail and a socket listener on the same source must feed
        one shared queue — the pump merges by name, so a duplicate
        LiveSource would be silently shadowed and its events lost."""
        service = empty_service(bid_stream)
        lines = format_jsonl(bid_stream).splitlines()
        schema_line, events = lines[0], lines[1:]
        half = len(events) // 2
        feed = tmp_path / "bids.jsonl"
        feed.write_text("\n".join([schema_line] + events[:half]) + "\n")

        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            query = service.submit("alice", WINDOWED_MAX)
            server.add_tail("Bid", str(feed))
            await server.listen_source("Bid", "127.0.0.1", 0)
            assert len(server.sources) == 1  # one queue, two producers
            _, sock_server = server._socket_servers[-1]
            host, port = sock_server.sockets[0].getsockname()[:2]
            server.start_pump()
            await asyncio.sleep(0.2)  # the tailed half ingests first
            reader, writer = await asyncio.open_connection(host, port)
            for line in events[half:]:
                writer.write((line + "\n").encode())
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.1)
            server._follow = False
            await server.drain()
            await server.stop()
            return query

        query = asyncio.run(drive())
        eng = StreamEngine()
        eng.register_stream("Bid", bid_stream)
        expected = eng.query(WINDOWED_MAX).run().changes
        assert query.flow.output_slice(0) == expected

    def test_listen_source_requires_registered_source(self, bid_stream):
        service = empty_service(bid_stream)

        async def drive():
            server = ServiceServer(service, "127.0.0.1", 0)
            await server.start()
            try:
                await server.listen_source("Nope", "127.0.0.1", 0)
            finally:
                await server.stop()

        with pytest.raises(Exception):
            asyncio.run(drive())

    def test_split_listen_source_spec(self):
        from repro.__main__ import _split_listen_source

        assert _split_listen_source("Bid=0.0.0.0:9000") == (
            "Bid", "0.0.0.0", 9000
        )
        assert _split_listen_source("Bid=:9000") == ("Bid", "127.0.0.1", 9000)
        for bad in ("Bid", "Bid=localhost", "Bid=localhost:nope"):
            with pytest.raises(SystemExit) as excinfo:
                _split_listen_source(bad)
            assert "--listen-source expects NAME=HOST:PORT" in str(
                excinfo.value
            )

    def test_serve_parser_accepts_share_plans_flags(self):
        from repro.__main__ import build_config, build_serve_parser

        parser = build_serve_parser()
        on = build_config(parser.parse_args(["--share-plans"]))
        off = build_config(parser.parse_args(["--no-share-plans"]))
        unset = build_config(parser.parse_args([]))
        assert on.share_plans is True
        assert off.share_plans is False
        assert unset.share_plans is None
        assert unset.resolved().share_plans is True
