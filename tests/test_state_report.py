"""Tests for state introspection and the watermark-contract diagnostic."""

import pytest

from repro import StreamEngine
from repro.core.errors import ExecutionError
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation
from repro.nexmark import paper_bid_stream
from repro.nexmark.queries import q7_paper

SCHEMA = Schema([timestamp_col("ts", event_time=True), int_col("v")])


class TestStateReport:
    @pytest.fixture
    def dataflow(self):
        engine = StreamEngine()
        engine.register_stream("Bid", paper_bid_stream())
        dataflow = engine.query(q7_paper()).dataflow()
        dataflow.run()
        return dataflow

    def test_totals_match_operator_sum(self, dataflow):
        report = dataflow.state_report()
        assert report.total_rows == dataflow.total_state_rows()
        assert report.total_rows == sum(
            op.retained_rows for op in report.operators
        )

    def test_expiry_surfaces(self, dataflow):
        report = dataflow.state_report()
        # the windowed join expired bids/aggregates past the watermark
        assert report.total_expired > 0

    def test_rendering_names_operators(self, dataflow):
        text = str(dataflow.state_report())
        assert "total retained rows" in text
        assert "Join" in text

    def test_late_drops_counted(self):
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, (t("8:01"), 1))
        tvr.advance_watermark(2, t("9:00"))
        tvr.insert(3, (t("8:02"), 2))  # late
        engine = StreamEngine()
        engine.register_stream("S", tvr)
        dataflow = engine.query(
            "SELECT TB.wend, COUNT(*) c FROM Tumble(data => TABLE(S), "
            "timecol => DESCRIPTOR(ts), dur => INTERVAL '10' MINUTES) TB "
            "GROUP BY TB.wend"
        ).dataflow()
        dataflow.run()
        assert dataflow.state_report().total_late_dropped == 1


class TestContractViolations:
    def test_sound_stream_has_none(self):
        assert paper_bid_stream().contract_violations() == []

    def test_violation_reported(self):
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.advance_watermark(1, t("9:00"))
        tvr.insert(2, (t("8:30"), 1))  # behind the asserted watermark
        (violation,) = tvr.contract_violations()
        assert "watermark" in violation

    def test_boundary_row_is_tolerated(self):
        """The paper's own dataset has row C arrive exactly at the
        watermark (bidtime 8:05, WM 8:05) and includes it in every
        result, so the bound is read as inclusive."""
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.advance_watermark(1, t("9:00"))
        tvr.insert(2, (t("9:00"), 1))
        assert tvr.contract_violations() == []

    def test_explicit_column_required_when_ambiguous(self):
        plain = Schema([int_col("a"), int_col("b")])
        tvr = TimeVaryingRelation(plain)
        with pytest.raises(ExecutionError, match="time_column"):
            tvr.contract_violations()

    def test_explicit_column(self):
        tvr = TimeVaryingRelation(SCHEMA)
        tvr.insert(1, (t("8:00"), 1))
        assert tvr.contract_violations("ts") == []


class TestShellState:
    def test_state_command(self, tmp_path):
        from repro.io import format_script
        from repro.shell import Shell

        path = tmp_path / "bids.script"
        path.write_text(format_script(paper_bid_stream()))
        shell = Shell()
        shell.feed(f"\\load Bid {path}")
        out = shell.feed("\\state SELECT * FROM Bid;")
        assert "total retained rows" in out
