"""Property-based tests of end-to-end engine invariants."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine
from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.core.times import seconds
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema(
    [timestamp_col("ts", event_time=True), int_col("v"), string_col("k")]
)

# strategy: a batch of (event_ts, value, key) rows with bounded disorder
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=60_000),
        st.integers(min_value=-100, max_value=100),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=1,
    max_size=40,
)


def build_stream(rows, skew=5_000, wm_every=7):
    """Arrival order is list order; event times come from the rows."""
    tvr = TimeVaryingRelation(SCHEMA)
    ptime = 0
    max_ts = 0
    for i, (ts, v, k) in enumerate(rows):
        ptime += 100
        max_ts = max(max_ts, ts)
        tvr.insert(ptime, (ts, v, k))
        if (i + 1) % wm_every == 0:
            tvr.advance_watermark(ptime, max_ts - skew)
    tvr.advance_watermark(ptime + 1, max_ts + 1)
    return tvr


def make_engine(rows, skew=5_000):
    engine = StreamEngine()
    engine.register_stream("S", build_stream(rows, skew=skew))
    return engine


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_windowed_count_matches_batch_recompute(rows):
    """Streaming windowed aggregation == recomputing from scratch.

    Disorder never exceeds the watermark slack here, so no rows are
    dropped as late and the incremental result must equal the batch one.
    """
    # keep disorder within the watermark slack: cap how far back an
    # event may be relative to the running max
    capped = []
    running_max = 0
    for ts, v, k in rows:
        ts = max(ts, running_max - 4_000)
        running_max = max(running_max, ts)
        capped.append((ts, v, k))

    engine = make_engine(capped)
    sql = (
        "SELECT TB.wend, COUNT(*) c, SUM(TB.v) s FROM Tumble("
        "data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend"
    )
    streamed = engine.query(sql).table()

    expected: dict = {}
    for ts, v, k in capped:
        wend = (ts // 10_000) * 10_000 + 10_000
        count, total = expected.get(wend, (0, 0))
        expected[wend] = (count + 1, total + v)
    expected_rows = {(wend, c, s) for wend, (c, s) in expected.items()}
    assert set(streamed.tuples) == expected_rows
    assert engine.query(sql).run().late_dropped == 0


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_emit_stream_folds_to_table_at_any_instant(rows):
    """Stream/table duality: folding the changelog equals the snapshot."""
    engine = make_engine(rows)
    sql = (
        "SELECT TB.wend, MAX(TB.v) m FROM Tumble("
        "data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend"
    )
    result = engine.query(sql).run()
    probes = sorted({c.ptime for c in result.changes})[:10]
    stream = engine.query(sql + " EMIT STREAM").stream()
    for at in probes:
        bag = Counter()
        for change in stream:
            if change.ptime <= at:
                bag[change.values] += -1 if change.undo else 1
        table = Counter(engine.query(sql).table(at=at).tuples)
        assert +bag == +table


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_after_watermark_table_is_stable_prefix(rows):
    """Extension 5: once a row materializes it never changes.

    The AFTER WATERMARK table at time t1 is a subset of the table at any
    t2 > t1 (rows only ever get *added* once final).
    """
    engine = make_engine(rows)
    sql = (
        "SELECT TB.wend, COUNT(*) c FROM Tumble("
        "data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend "
        "EMIT AFTER WATERMARK"
    )
    query = engine.query(sql)
    result = query.run()
    probes = sorted({pt for pt, _ in result.watermarks.as_pairs()})
    previous: Counter = Counter()
    for at in probes:
        current = Counter(query.table(at=at).tuples)
        assert previous <= current
        previous = current


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.integers(min_value=100, max_value=5_000))
def test_after_delay_net_effect_matches_instantaneous(rows, delay):
    """Extension 6 coalesces updates but never changes the final state."""
    engine = make_engine(rows)
    base = (
        "SELECT TB.wend, SUM(TB.v) s FROM Tumble("
        "data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend"
    )
    instant = engine.query(base).table()
    delayed = engine.query(
        base + f" EMIT AFTER DELAY INTERVAL '{delay}' MILLISECONDS"
    ).table()
    assert Counter(instant.tuples) == Counter(delayed.tuples)
    # and the delayed stream is never longer than the instantaneous one
    raw = engine.query(base + " EMIT STREAM").stream()
    coalesced = engine.query(
        base + f" EMIT STREAM AFTER DELAY INTERVAL '{delay}' MILLISECONDS"
    ).stream()
    assert len(coalesced) <= len(raw)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_hop_equals_union_of_shifted_tumbles(rows):
    """A hop window of slide s and size 2s is two shifted tumbles."""
    engine = make_engine(rows)
    hop = engine.query(
        "SELECT * FROM Hop(data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "dur => INTERVAL '10' SECONDS, slide => INTERVAL '5' SECONDS)"
    ).table()
    tumble_a = engine.query(
        "SELECT * FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "dur => INTERVAL '10' SECONDS)"
    ).table()
    tumble_b = engine.query(
        "SELECT * FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
        "dur => INTERVAL '10' SECONDS, offset => INTERVAL '5' SECONDS)"
    ).table()
    assert Counter(hop.tuples) == Counter(tumble_a.tuples) + Counter(
        tumble_b.tuples
    )
