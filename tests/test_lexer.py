"""Unit tests for the SQL tokenizer."""

import pytest

from repro.core.errors import LexError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [(tok.type, tok.value) for tok in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select FROM WhErE")
        assert all(t.type is TokenType.KEYWORD for t in toks[:-1])
        assert toks[0].upper == "SELECT"

    def test_identifiers_keep_case(self):
        (tok,) = tokenize("MaxBid")[:-1]
        assert tok.type is TokenType.IDENT
        assert tok.value == "MaxBid"

    def test_eof_token(self):
        toks = tokenize("x")
        assert toks[-1].type is TokenType.EOF

    def test_positions(self):
        toks = tokenize("a  b")
        assert toks[0].pos == 0
        assert toks[1].pos == 3


class TestNumbers:
    @pytest.mark.parametrize(
        "text,expected",
        [("42", "42"), ("3.14", "3.14"), ("1e6", "1e6"), ("2.5E-3", "2.5E-3"),
         (".5", ".5")],
    )
    def test_number_forms(self, text, expected):
        (tok,) = tokenize(text)[:-1]
        assert tok.type is TokenType.NUMBER
        assert tok.value == expected

    def test_second_dot_starts_new_number(self):
        toks = tokenize("1.2.3")  # 1.2 then .3 (a number may start with .)
        assert [t.value for t in toks[:-1]] == ["1.2", ".3"]


class TestStrings:
    def test_simple(self):
        (tok,) = tokenize("'hello'")[:-1]
        assert tok.type is TokenType.STRING
        assert tok.value == "hello"

    def test_escaped_quote(self):
        (tok,) = tokenize("'it''s'")[:-1]
        assert tok.value == "it's"

    def test_unterminated(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'oops")

    def test_quoted_identifier(self):
        (tok,) = tokenize('"select"')[:-1]
        assert tok.type is TokenType.IDENT
        assert tok.value == "select"


class TestOperators:
    def test_multi_char_ops(self):
        values = [t.value for t in tokenize("a => b <> c <= d >= e != f || g")[:-1]]
        assert "=>" in values and "<>" in values and "<=" in values
        assert ">=" in values and "!=" in values and "||" in values

    def test_single_char_ops(self):
        values = [t.value for t in tokenize("( ) , . ; + - * / % = < >")[:-1]]
        assert values == list("(),.;+-*/%=<>")

    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")

    def test_question_mark_is_a_token(self):
        # used as the optional quantifier in MATCH_RECOGNIZE patterns
        assert tokenize("A?")[1].value == "?"


class TestComments:
    def test_line_comment(self):
        assert kinds("a -- comment\nb") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_line_comment_at_eof(self):
        assert kinds("a -- trailing") == [(TokenType.IDENT, "a")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_unterminated_block(self):
        with pytest.raises(LexError, match="unterminated block"):
            tokenize("a /* oops")

    def test_minus_still_works(self):
        assert kinds("a - b")[1] == (TokenType.OP, "-")


class TestTokenHelpers:
    def test_is_keyword(self):
        tok = tokenize("SELECT")[0]
        assert tok.is_keyword("SELECT")
        assert tok.is_keyword("SELECT", "FROM")
        assert not tok.is_keyword("FROM")

    def test_str(self):
        assert str(tokenize("x")[0]) == "'x'"
        assert str(tokenize("")[0]) == "end of input"
