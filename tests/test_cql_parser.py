"""Tests for the CQL text parser/evaluator (Listing 1's dialect)."""

import pytest

from repro.core.errors import ParseError, ValidationError
from repro.core.schema import Schema, int_col, string_col
from repro.core.times import minutes, t
from repro.cql import CqlStream, parse_cql
from repro.nexmark import paper_bid_stream

LISTING_1 = """
SELECT
  Rstream(B.price, B.item)
FROM
  Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B
WHERE
  B.price =
  (SELECT MAX(B1.price) FROM Bid
   [RANGE 10 MINUTE SLIDE 10 MINUTE] B1);
"""


@pytest.fixture
def bid_cql():
    return CqlStream.from_tvr(
        paper_bid_stream(), "bidtime", keep_time_column=True
    )


def simple_stream(*elements):
    schema = Schema([int_col("v"), string_col("k")])
    return CqlStream(schema, [(ts, values) for ts, values in elements])


class TestListing1Text:
    def test_executes_verbatim(self, bid_cql):
        """The paper's CQL text runs as written on the CQL baseline."""
        out = parse_cql(LISTING_1).evaluate({"bid": bid_cql})
        assert [(ts, values) for ts, values in out] == [
            (t("8:10"), (5, "D")),
            (t("8:20"), (6, "F")),
        ]

    def test_matches_programmatic_q7(self, bid_cql):
        from repro.nexmark.queries import q7_cql

        text_rows = [
            (ts, values[0], values[1])
            for ts, values in parse_cql(LISTING_1).evaluate({"bid": bid_cql})
        ]
        api_rows = [
            (ts, values[1], values[2]) for ts, values in q7_cql(paper_bid_stream())
        ]
        assert text_rows == api_rows


class TestParsing:
    def test_istream_dstream(self):
        assert parse_cql("SELECT Istream(v) FROM S [NOW]").stream_op == "ISTREAM"
        assert parse_cql("SELECT Dstream(v) FROM S [NOW]").stream_op == "DSTREAM"

    def test_relation_query_has_no_stream_op(self):
        query = parse_cql("SELECT v FROM S [ROWS 5]")
        assert query.stream_op is None
        assert query.from_refs[0].window.kind == "rows"

    def test_unbounded_default(self):
        query = parse_cql("SELECT v FROM S")
        assert query.from_refs[0].window.kind == "unbounded"

    def test_range_units(self):
        query = parse_cql("SELECT v FROM S [RANGE 2 HOURS SLIDE 30 MINUTES]")
        window = query.from_refs[0].window
        assert window.range_ == minutes(120)
        assert window.slide == minutes(30)

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT FROM S",
            "SELECT v FROM S [RANGE ten MINUTES]",
            "SELECT v FROM S [RANGE 1 FORTNIGHT]",
            "SELECT v FROM S trailing garbage here",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_cql(bad)


class TestEvaluation:
    def test_projection_and_filter(self):
        stream = simple_stream(
            (minutes(1), (5, "a")), (minutes(2), (9, "b"))
        )
        query = parse_cql(
            "SELECT Rstream(v) FROM S [RANGE 10 MINUTES SLIDE 10 MINUTES] "
            "WHERE v > 6"
        )
        out = query.evaluate({"s": stream})
        assert [(ts, values) for ts, values in out] == [(minutes(10), (9,))]

    def test_aggregate_select(self):
        stream = simple_stream(
            (minutes(1), (5, "a")), (minutes(2), (9, "b")),
            (minutes(11), (7, "c")),
        )
        query = parse_cql(
            "SELECT Rstream(MAX(v), COUNT(*)) FROM S "
            "[RANGE 10 MINUTES SLIDE 10 MINUTES]"
        )
        out = list(query.evaluate({"s": stream}))
        assert out == [
            (minutes(10), (9, 2)),
            (minutes(20), (7, 1)),
        ]

    def test_unknown_stream(self):
        query = parse_cql("SELECT v FROM Ghost [NOW]")
        with pytest.raises(ValidationError, match="unknown CQL stream"):
            query.evaluate({})

    def test_mismatched_slides_rejected(self):
        stream = simple_stream((minutes(1), (5, "a")))
        query = parse_cql(
            "SELECT a.v FROM S [RANGE 10 MINUTES SLIDE 10 MINUTES] a, "
            "S [RANGE 5 MINUTES SLIDE 5 MINUTES] b"
        )
        with pytest.raises(ValidationError, match="share ticks"):
            query.evaluate({"s": stream})

    def test_self_join_lock_step(self):
        stream = simple_stream(
            (minutes(1), (5, "a")), (minutes(2), (9, "b"))
        )
        query = parse_cql(
            "SELECT Rstream(a.v, b.v) FROM "
            "S [RANGE 10 MINUTES SLIDE 10 MINUTES] a, "
            "S [RANGE 10 MINUTES SLIDE 10 MINUTES] b "
            "WHERE a.v < b.v"
        )
        out = list(query.evaluate({"s": stream}))
        assert out == [(minutes(10), (5, 9))]
