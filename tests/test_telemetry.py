"""Tests for the latency-telemetry layer (``repro.obs``) and exporters.

Covers the four legs of the telemetry tentpole:

* :class:`Histogram` — bucketing, percentiles, and (via hypothesis) the
  merge associativity/commutativity that makes per-shard histograms
  safe to combine in any order;
* serial vs. sharded agreement — by routing invariance the shard-merged
  histograms must hold exactly the serial run's samples, checked on
  NEXMark Q3 (partitionable join), Q7 (serial fallback), and the
  per-auction tumbling-window count (partitionable, windowed);
* the Prometheus text exposition — rendered, re-parsed with the
  dependency-free validator, and pinned to the stable family names;
* the JSON-lines event log — one valid JSON object per trace event,
  round-tripping back to equal :class:`TraceEvent` objects.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionConfig, StreamEngine
from repro.core.errors import ValidationError
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.obs import BUCKET_BOUNDS, Histogram, RunTelemetry, TraceCollector
from repro.obs.export import (
    JsonLinesExporter,
    PrometheusExporter,
    make_exporter,
    parse_exposition,
    read_events,
    render_exposition,
)
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import (
    Q3_LOCAL_ITEM_SUGGESTION,
    q7_highest_bid,
    register_udfs,
)

KEYED_SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

TUMBLE_SQL = """
    SELECT k, wend, COUNT(*) AS n
    FROM Tumble(data => TABLE(S),
                timecol => DESCRIPTOR(ts),
                dur => INTERVAL '2' MINUTE) TS
    GROUP BY k, wend
"""

NEXMARK_TUMBLE_SQL = """
    SELECT TB.auction, TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.auction, TB.wend
"""


def keyed_engine(events, parallelism=1, **kwargs):
    engine = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend="sync", **kwargs)
    )
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    return engine


def windowed_events():
    return [
        ins(100, (1, t("8:00"), 10)),
        ins(200, (2, t("8:01"), 20)),
        wm(300, t("8:02")),
        ins(400, (1, t("8:03"), 30)),
        wm(500, t("8:10")),
    ]


def nexmark_engine(parallelism=1, backend="sync", num_events=1500):
    engine = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend=backend)
    )
    generate(NexmarkConfig(num_events=num_events, seed=11)).register_on(engine)
    register_udfs(engine)
    return engine


# ---------------------------------------------------------------------------
# histogram
# ---------------------------------------------------------------------------


def test_histogram_basics():
    h = Histogram()
    for value in (0, 1, 2, 3, 1000, 5000):
        h.observe(value)
    assert h.count == 6
    assert h.sum == 6006
    assert h.min == 0
    assert h.max == 5000
    summary = h.summary()
    assert summary["count"] == 6
    assert summary["p50"] <= summary["p95"] <= summary["p99"] <= h.max


def test_histogram_empty_summary():
    summary = Histogram().summary()
    assert summary["count"] == 0
    assert summary["p50"] is None and summary["p99"] is None


def test_histogram_negative_values_clamp_to_zero():
    h = Histogram()
    h.observe(-5)
    assert h.count == 1 and h.min == 0 and h.sum == 0


def test_histogram_percentile_exact_on_single_value():
    h = Histogram()
    for _ in range(100):
        h.observe(42)
    # The bucket upper bound would be 64; the observed max clamps it.
    assert h.percentile(0.5) == 42
    assert h.percentile(0.99) == 42


def test_histogram_overflow_bucket():
    h = Histogram()
    h.observe(2 ** 50)  # beyond the largest finite bound
    assert h.count == 1
    le, cumulative = h.cumulative_buckets()[-1]
    assert le == "+Inf" and cumulative == 1
    assert h.cumulative_buckets()[-2][1] == 0  # not in any finite bucket


def test_bucket_bounds_are_log2():
    assert BUCKET_BOUNDS[0] == 1
    assert all(b == 2 * a for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2 ** 44), max_size=40),
    st.lists(st.integers(min_value=0, max_value=2 ** 44), max_size=40),
    st.lists(st.integers(min_value=0, max_value=2 ** 44), max_size=40),
)
def test_histogram_merge_associative_and_commutative(xs, ys, zs):
    def hist(values):
        h = Histogram()
        for value in values:
            h.observe(value)
        return h

    left = hist(xs).merge(hist(ys)).merge(hist(zs))
    right = hist(xs).merge(hist(ys).merge(hist(zs)))
    swapped = hist(zs).merge(hist(xs)).merge(hist(ys))
    assert left == right == swapped
    # And merging equals observing the concatenation.
    assert left == hist(xs + ys + zs)


def test_histogram_snapshot_roundtrip():
    h = Histogram()
    for value in (1, 7, 300):
        h.observe(value)
    assert Histogram.from_snapshot(h.snapshot()) == h


# ---------------------------------------------------------------------------
# serial vs. sharded telemetry
# ---------------------------------------------------------------------------


def test_windowed_query_records_emit_latency():
    engine = keyed_engine(windowed_events())
    report = engine.query(TUMBLE_SQL).metrics()
    assert report.telemetry is not None
    assert report.telemetry.emit_latency.count > 0
    assert report.telemetry.watermark_lag.count > 0


def test_sharded_telemetry_matches_serial_on_tumble():
    serial = keyed_engine(windowed_events()).query(TUMBLE_SQL).metrics()
    sharded = keyed_engine(windowed_events(), parallelism=4).query(TUMBLE_SQL)
    assert sharded.partition_decision().partitionable
    merged = sharded.metrics()
    assert merged.telemetry.summary() == serial.telemetry.summary()


@pytest.mark.parametrize(
    "sql", [Q3_LOCAL_ITEM_SUGGESTION, q7_highest_bid(), NEXMARK_TUMBLE_SQL]
)
def test_nexmark_latency_samples_match_serial(sql):
    """Q3 shards (join), Q7 falls back to serial, the tumble count shards
    with real emit-latency samples — all must agree with the serial run."""
    serial = nexmark_engine().query(sql).metrics().telemetry
    sharded = nexmark_engine(parallelism=4).query(sql).metrics().telemetry
    assert sharded.emit_latency.count == serial.emit_latency.count
    assert sharded.watermark_lag.count == serial.watermark_lag.count
    assert sharded.summary() == serial.summary()


def test_nexmark_tumble_actually_shards_with_samples():
    query = nexmark_engine(parallelism=4).query(NEXMARK_TUMBLE_SQL)
    assert query.partition_decision().partitionable
    telemetry = query.metrics().telemetry
    assert telemetry.emit_latency.count > 0


def test_explain_analyze_has_latency_section():
    engine = keyed_engine(windowed_events())
    text = engine.explain(TUMBLE_SQL, mode="analyze")
    assert "emit latency" in text
    assert "watermark lag" in text
    assert "p99" in text


def test_telemetry_survives_checkpoint():
    engine = keyed_engine(windowed_events())
    flow = engine.query(TUMBLE_SQL).dataflow()
    flow.run()
    restored = engine.query(TUMBLE_SQL).dataflow()
    restored.restore(flow.checkpoint())
    assert restored.telemetry.summary() == flow.telemetry.summary()


def test_run_telemetry_merge():
    a, b = RunTelemetry(), RunTelemetry()
    a.record_emit(ptime=1000, completion_time=400, root_watermark=300)
    b.record_emit(ptime=2000, completion_time=2500, root_watermark=1500)
    merged = RunTelemetry.merged([a, b])
    assert merged.emit_latency.count == 2
    assert merged.early_emits == 1  # b emitted before its completion time
    assert merged.watermark_lag.count == 2


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


def test_exposition_parses_and_has_stable_families():
    engine = keyed_engine(windowed_events())
    report = engine.query(TUMBLE_SQL).metrics()
    families = parse_exposition(render_exposition(report))
    for name, kind in {
        "repro_operator_rows_in_total": "counter",
        "repro_operator_rows_out_total": "counter",
        "repro_operator_retracts_out_total": "counter",
        "repro_operator_late_dropped_total": "counter",
        "repro_operator_expired_rows_total": "counter",
        "repro_operator_wm_advances_total": "counter",
        "repro_operator_state_rows": "gauge",
        "repro_operator_peak_state_rows": "gauge",
        "repro_operator_watermark_lag_ms": "gauge",
        "repro_emit_latency_ms": "histogram",
        "repro_root_watermark_lag_ms": "histogram",
        "repro_early_emits_total": "counter",
    }.items():
        assert families[name]["type"] == kind, name
        assert families[name]["samples"], name


def test_exposition_histogram_buckets_are_cumulative():
    engine = keyed_engine(windowed_events())
    families = parse_exposition(
        render_exposition(engine.query(TUMBLE_SQL).metrics())
    )
    buckets = [
        value
        for metric, labels, value in families["repro_emit_latency_ms"]["samples"]
        if metric == "repro_emit_latency_ms_bucket"
    ]
    assert buckets == sorted(buckets)
    count = next(
        value
        for metric, _, value in families["repro_emit_latency_ms"]["samples"]
        if metric == "repro_emit_latency_ms_count"
    )
    assert buckets[-1] == count


def test_exposition_labels_unique_per_operator():
    engine = keyed_engine(windowed_events())
    families = parse_exposition(
        render_exposition(engine.query(TUMBLE_SQL).metrics())
    )
    label_sets = [
        tuple(sorted(labels.items()))
        for _, labels, _ in families["repro_operator_rows_out_total"]["samples"]
    ]
    assert len(label_sets) == len(set(label_sets))


def test_parse_exposition_rejects_malformed():
    with pytest.raises(ValueError):
        parse_exposition("repro_thing 1\n")  # sample without TYPE
    with pytest.raises(ValueError):
        parse_exposition("# TYPE x sparkline\nx 1\n")  # unknown type
    with pytest.raises(ValueError):
        parse_exposition(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\nh_sum 1\nh_count 3\n'
        )  # non-cumulative buckets
    with pytest.raises(ValueError):
        parse_exposition(
            "# TYPE h histogram\n" 'h_bucket{le="+Inf"} 3\nh_count 3\n'
        )  # missing _sum


def test_prometheus_exporter_writes_file(tmp_path):
    path = tmp_path / "metrics.prom"
    engine = keyed_engine(
        windowed_events(), telemetry=f"prometheus:{path}"
    )
    engine.query(TUMBLE_SQL).run()
    families = parse_exposition(path.read_text())
    assert "repro_emit_latency_ms" in families


# ---------------------------------------------------------------------------
# JSONL exporter
# ---------------------------------------------------------------------------


def test_jsonl_roundtrip_matches_collector():
    buffer = io.StringIO()
    engine = keyed_engine(
        windowed_events(), telemetry=JsonLinesExporter(buffer)
    )
    flow = engine.query(TUMBLE_SQL).dataflow()
    collector = TraceCollector()
    exporter = engine.telemetry

    def tee(event):
        collector(event)
        exporter.on_event(event)

    flow.trace = tee
    flow.run()
    lines = [line for line in buffer.getvalue().splitlines() if line]
    for line in lines:
        assert isinstance(json.loads(line), dict)  # one JSON object per line
    buffer.seek(0)
    assert read_events(buffer) == collector.events


def test_jsonl_exporter_via_engine(tmp_path):
    path = tmp_path / "events.jsonl"
    engine = keyed_engine(windowed_events(), telemetry=f"jsonl:{path}")
    engine.query(TUMBLE_SQL).run()
    engine.telemetry.close()
    events = read_events(str(path))
    assert events
    kinds = {event.kind for event in events}
    assert "batch" in kinds and "watermark" in kinds
    assert all(event.operator for event in events if event.kind == "batch")


def test_sharded_jsonl_tags_shards(tmp_path):
    path = tmp_path / "events.jsonl"
    engine = keyed_engine(
        windowed_events(), parallelism=2, telemetry=f"jsonl:{path}"
    )
    engine.query(TUMBLE_SQL).run()
    engine.telemetry.close()
    events = read_events(str(path))
    shards = {event.shard for event in events if event.kind == "batch"}
    assert shards <= {0, 1} and shards
    assert any(event.kind == "frontier" for event in events)


# ---------------------------------------------------------------------------
# exporter resolution
# ---------------------------------------------------------------------------


def test_make_exporter_specs(tmp_path):
    assert make_exporter(None) is None
    jsonl = make_exporter(f"jsonl:{tmp_path / 'a.jsonl'}")
    assert isinstance(jsonl, JsonLinesExporter)
    jsonl.close()
    assert isinstance(make_exporter(f"prom:{tmp_path / 'a.prom'}"), PrometheusExporter)
    passthrough = PrometheusExporter()
    assert make_exporter(passthrough) is passthrough
    with pytest.raises(ValueError):
        make_exporter("jsonl:")
    with pytest.raises(ValueError):
        make_exporter("csv:/tmp/x")


def test_engine_rejects_bad_telemetry_spec():
    with pytest.raises(ValidationError):
        StreamEngine(config=ExecutionConfig(telemetry="sparkline:/tmp/x"))
