"""Shell observability commands: ``\\analyze`` and ``\\watch``.

``Shell.feed`` returns printable output, so both commands are testable
without a terminal: ``\\analyze`` must render the plan with operator
counters and the latency section, and ``\\watch`` must return the final
dashboard frame (and stream intermediate frames to ``watch_sink`` when
one is attached).
"""

import io

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import t
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.shell import Shell

KEYED_SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

TUMBLE_SQL = (
    "SELECT k, wend, COUNT(*) AS n "
    "FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE) TS "
    "GROUP BY k, wend"
)


def make_shell(parallelism=1, **kwargs):
    engine = StreamEngine(
        config=ExecutionConfig(parallelism=parallelism, backend="sync", **kwargs)
    )
    events = [
        ins(100, (1, t("8:00"), 10)),
        ins(200, (2, t("8:01"), 20)),
        wm(300, t("8:02")),
        ins(400, (1, t("8:03"), 30)),
        wm(500, t("8:10")),
    ]
    engine.register_stream("S", TimeVaryingRelation(KEYED_SCHEMA, events))
    return Shell(engine)


# ---------------------------------------------------------------------------
# \analyze
# ---------------------------------------------------------------------------


def test_analyze_renders_plan_with_metrics():
    out = make_shell().feed(f"\\analyze {TUMBLE_SQL};")
    assert "GroupAggregate" in out or "Aggregate" in out
    assert "rows_in" in out


def test_analyze_includes_latency_section():
    out = make_shell().feed(f"\\analyze {TUMBLE_SQL};")
    assert "emit latency" in out
    assert "watermark lag" in out


def test_analyze_unknown_relation_is_an_error():
    out = make_shell().feed("\\analyze SELECT * FROM Nope;")
    assert out.startswith("error:")
    assert "Nope" in out or "nope" in out


# ---------------------------------------------------------------------------
# \watch
# ---------------------------------------------------------------------------


def test_watch_renders_final_dashboard():
    out = make_shell().feed(f"\\watch {TUMBLE_SQL};")
    assert "watch [done]" in out
    assert "rows/sec" in out
    assert "events/sec" in out
    assert "watermark" in out
    assert "emit lat" in out


def test_watch_sharded_shows_per_shard_skew():
    out = make_shell(parallelism=4).feed(f"\\watch {TUMBLE_SQL};")
    assert "shards" in out
    assert "s0" in out and "s3" in out


def test_watch_serial_has_no_shard_section():
    out = make_shell().feed(f"\\watch {TUMBLE_SQL};")
    assert "s0" not in out


def test_watch_streams_frames_to_sink():
    shell = make_shell()
    sink = io.StringIO()
    shell.watch_sink = sink
    final = shell.feed(f"\\watch {TUMBLE_SQL};")
    frames = sink.getvalue()
    assert "\x1b[2J" in frames  # ANSI clear between refreshes
    assert "watch [running]" in frames
    assert "watch [done]" in final and final not in frames


def test_watch_without_sql_prints_usage():
    assert make_shell().feed("\\watch") == "usage: \\watch SELECT ...;"


def test_watch_unknown_relation_is_an_error():
    out = make_shell().feed("\\watch SELECT * FROM Nope;")
    assert out.startswith("error:")


def test_help_mentions_watch_and_analyze():
    out = make_shell().feed("\\help")
    assert "\\watch" in out
    assert "\\analyze" in out
